//! Parallel, memoizing execution of simulation runs.
//!
//! The experiment harness ([`crate::experiments`]) regenerates ~20 tables and
//! figures, each of which needs tens to hundreds of independent
//! [`Simulation`] runs, and several figures share the same baselines (every
//! normalised figure re-needs the Base-CSSD run of each workload).
//! [`Simulation::run`] takes `&self`, so the runs are embarrassingly
//! parallel. The [`Runner`] executes batches of [`RunRequest`]s on a scoped
//! worker pool ([`std::thread::scope`]) and memoizes each unique
//! (config, workload, scale) triple, so a given simulation is executed
//! exactly once per harness invocation no matter how many figures ask for it.
//!
//! Because every simulation is deterministic, the runner's output is
//! bit-identical to the sequential path regardless of the number of worker
//! threads — `tests/experiment_runner.rs` locks this equivalence.

use crate::engine::{Simulation, TraceDrive};
use crate::metrics::SimResult;
use crate::scale::ExperimentScale;
use crate::telemetry::TelemetryOutput;
use serde::Serialize;
use skybyte_types::{PolicyOverride, SimConfig, TelemetryConfig, VariantKind};
use skybyte_workloads::WorkloadKind;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// One fully specified simulation run, identified by a deterministic
/// fingerprint of its configuration, workload and scale.
///
/// Two requests with equal fingerprints describe byte-for-byte identical
/// simulations, so the [`Runner`] serves the second one from its memo table.
#[derive(Debug, Clone)]
pub struct RunRequest {
    sim: Simulation,
    fingerprint: String,
}

impl RunRequest {
    /// A request for `variant` on `workload` at `scale`, mirroring
    /// [`Simulation::build`].
    pub fn build(variant: VariantKind, workload: WorkloadKind, scale: &ExperimentScale) -> Self {
        Self::from_simulation(Simulation::build(variant, workload, scale))
    }

    /// A request with an explicit configuration (for sensitivity sweeps),
    /// mirroring [`Simulation::with_config`].
    pub fn with_config(cfg: SimConfig, workload: WorkloadKind, scale: &ExperimentScale) -> Self {
        Self::from_simulation(Simulation::with_config(cfg, workload, scale))
    }

    /// Wraps an already-built simulation.
    pub fn from_simulation(sim: Simulation) -> Self {
        // The debug representation covers every field of the configuration,
        // workload and scale, and is deterministic — exactly what a memo key
        // needs within one harness invocation.
        let fingerprint = format!("{sim:?}");
        RunRequest { sim, fingerprint }
    }

    /// The deterministic memoization key of this request.
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    /// The simulation this request will run.
    pub fn simulation(&self) -> &Simulation {
        &self.sim
    }
}

/// Wall-clock measurement of one *executed* simulation (memo hits recall the
/// cached result and are deliberately not re-timed).
///
/// `work_units` counts retired accesses — completed requests plus squashed
/// re-issues — the same unit the engine's `max_steps` budget meters, so
/// `units_per_sec` is comparable across variants and scales.
#[derive(Debug, Clone, Serialize)]
pub struct RunTiming {
    /// Design variant of the run (e.g. `Base-CSSD`).
    pub variant: String,
    /// Workload driving the run (e.g. `tpcc`).
    pub workload: String,
    /// Host wall-clock time spent inside [`Simulation::run`], in nanoseconds.
    pub wall_nanos: u64,
    /// Retired work units: completed requests + squashed re-issues.
    pub work_units: u64,
    /// Simulated time covered by the run, in nanoseconds.
    pub simulated_nanos: u64,
    /// `work_units` per host wall-clock second — the engine's throughput.
    pub units_per_sec: f64,
    /// Median simulated access latency of the run, in nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile simulated access latency, in nanoseconds.
    pub p99_ns: u64,
    /// 99.9th-percentile simulated access latency, in nanoseconds.
    pub p999_ns: u64,
}

/// Machine-readable simulation-throughput report (the `--perf` flag of the
/// `figures` and `trace` binaries).
#[derive(Debug, Clone, Serialize)]
pub struct PerfReport {
    /// Worker threads the runner used.
    pub jobs: usize,
    /// Per-run timings in execution order.
    pub runs: Vec<RunTiming>,
    /// Sum of `work_units` across runs.
    pub total_work_units: u64,
    /// Sum of per-run wall time (CPU-side; concurrent runs overlap).
    pub total_wall_nanos: u64,
    /// `total_work_units / total_wall_nanos`, scaled to seconds: aggregate
    /// single-thread-equivalent engine throughput.
    pub aggregate_units_per_sec: f64,
}

impl PerfReport {
    /// Summarises every run `runner` executed so far.
    pub fn from_runner(runner: &Runner) -> Self {
        let runs = runner.run_timings();
        let total_work_units: u64 = runs.iter().map(|t| t.work_units).sum();
        let total_wall_nanos: u64 = runs.iter().map(|t| t.wall_nanos).sum();
        let aggregate_units_per_sec = if total_wall_nanos == 0 {
            0.0
        } else {
            total_work_units as f64 / (total_wall_nanos as f64 / 1e9)
        };
        PerfReport {
            jobs: runner.jobs(),
            runs,
            total_work_units,
            total_wall_nanos,
            aggregate_units_per_sec,
        }
    }
}

/// Number of worker threads the host offers the harness.
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// A memoizing simulation runner with a fixed-size scoped worker pool.
///
/// With `jobs == 1` the runner executes every pending request inline on the
/// calling thread (the sequential path); with `jobs > 1` pending requests are
/// drained from a shared queue by scoped worker threads. Either way each
/// unique fingerprint is simulated at most once and the cached
/// [`SimResult`]s are shared via [`Arc`].
///
/// # Example
///
/// ```
/// use skybyte_sim::runner::{RunRequest, Runner};
/// use skybyte_sim::ExperimentScale;
/// use skybyte_types::VariantKind;
/// use skybyte_workloads::WorkloadKind;
///
/// let scale = ExperimentScale::tiny().with_accesses_per_thread(50);
/// let runner = Runner::new(2);
/// let req = RunRequest::build(VariantKind::BaseCssd, WorkloadKind::Ycsb, &scale);
/// let a = runner.run(&req);
/// let b = runner.run(&req); // memo hit: no second simulation
/// assert_eq!(runner.runs_executed(), 1);
/// assert_eq!(a.exec_time, b.exec_time);
/// ```
#[derive(Debug)]
pub struct Runner {
    jobs: usize,
    /// Trace drive applied to every request this runner executes (record
    /// to / replay from a trace directory); [`TraceDrive::Synthetic`] leaves
    /// requests untouched. The drive becomes part of each decorated
    /// request's fingerprint, so memoization stays sound when one process
    /// mixes drives.
    drive: TraceDrive,
    /// Policy overrides applied to every request this runner executes (the
    /// `figures --policy <name>` hook). Like the drive, the overrides land
    /// in each decorated request's configuration and therefore in its
    /// fingerprint, keeping memoization sound.
    policies: Vec<PolicyOverride>,
    /// When set, every executed run is checked against the cross-layer
    /// conservation audit ([`crate::audit`]) and violations are collected
    /// for [`Runner::audit_failures`] (the `figures --audit` hook).
    audit: bool,
    /// Telemetry settings applied to every request this runner executes (the
    /// `figures --metrics` / `--timeline` hook). Telemetry is observe-only
    /// and its configuration is deliberately excluded from fingerprints, so
    /// enabling it never splits the memo table — but memo hits recall a
    /// cached [`SimResult`] without re-executing, so they contribute no
    /// telemetry output.
    telemetry: TelemetryConfig,
    state: Mutex<MemoState>,
    /// Signalled whenever a run completes, waking callers blocked on a
    /// fingerprint claimed by a concurrent `run_all`.
    finished: Condvar,
    runs_executed: AtomicU64,
    truncated_runs: AtomicU64,
    /// Requests served across every `run_all` call (executions + memo
    /// hits), so front ends can report how much work memoization saved.
    requests_served: AtomicU64,
    audit_failures: Mutex<Vec<String>>,
    /// Wall-clock timing of every executed run, in execution order.
    timings: Mutex<Vec<RunTiming>>,
    /// Telemetry captured from executed runs, keyed by fingerprint (the
    /// deterministic sort key) with a human-readable `variant/workload`
    /// label for export headers.
    telemetry_outputs: Mutex<Vec<(String, String, TelemetryOutput)>>,
}

/// Memoized results plus the fingerprints currently being simulated, so that
/// concurrent callers never execute the same run twice.
#[derive(Debug, Default)]
struct MemoState {
    done: HashMap<String, Arc<SimResult>>,
    in_flight: HashSet<String>,
}

impl Runner {
    /// Creates a runner with `jobs` worker threads (clamped to at least 1).
    pub fn new(jobs: usize) -> Self {
        Runner {
            jobs: jobs.max(1),
            drive: TraceDrive::Synthetic,
            policies: Vec::new(),
            audit: false,
            telemetry: TelemetryConfig::default(),
            state: Mutex::new(MemoState::default()),
            finished: Condvar::new(),
            runs_executed: AtomicU64::new(0),
            truncated_runs: AtomicU64::new(0),
            requests_served: AtomicU64::new(0),
            audit_failures: Mutex::new(Vec::new()),
            timings: Mutex::new(Vec::new()),
            telemetry_outputs: Mutex::new(Vec::new()),
        }
    }

    /// Returns this runner with `drive` applied to every request it
    /// executes — the `figures --record-dir` / `--replay-dir` hook.
    pub fn with_drive(mut self, drive: TraceDrive) -> Self {
        self.drive = drive;
        self
    }

    /// The trace drive applied to this runner's requests.
    pub fn drive(&self) -> &TraceDrive {
        &self.drive
    }

    /// Returns this runner with `policies` applied (in order) to the
    /// configuration of every request it executes — the `figures --policy`
    /// hook. An empty list leaves requests untouched.
    pub fn with_policy_overrides(mut self, policies: Vec<PolicyOverride>) -> Self {
        self.policies = policies;
        self
    }

    /// The policy overrides applied to this runner's requests.
    pub fn policy_overrides(&self) -> &[PolicyOverride] {
        &self.policies
    }

    /// Returns this runner with the conservation audit enabled (or not):
    /// every *executed* simulation (memo hits are already-audited results)
    /// is checked against [`crate::audit`], and any violation is recorded
    /// for [`audit_failures`](Self::audit_failures).
    pub fn with_audit(mut self, audit: bool) -> Self {
        self.audit = audit;
        self
    }

    /// Whether the conservation audit runs on every executed simulation.
    pub fn audits(&self) -> bool {
        self.audit
    }

    /// Returns this runner with `telemetry` applied to every request it
    /// executes — the `figures --metrics` / `--timeline` hook. Telemetry is
    /// observe-only (results stay bit-identical) and excluded from
    /// fingerprints, so it never perturbs or splits the memo table; captured
    /// outputs are available from
    /// [`telemetry_outputs`](Self::telemetry_outputs).
    pub fn with_telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The telemetry settings applied to this runner's executed requests.
    pub fn telemetry(&self) -> TelemetryConfig {
        self.telemetry
    }

    /// Telemetry captured from every *executed* run so far, as
    /// `(label, output)` pairs sorted by the runs' fingerprints. The sort
    /// makes the collection independent of worker-pool scheduling, so
    /// exports rendered from it are byte-identical across `--jobs` values.
    /// Memo hits recall cached results without re-executing and therefore
    /// contribute no entries.
    pub fn telemetry_outputs(&self) -> Vec<(String, TelemetryOutput)> {
        let mut outputs = self
            .telemetry_outputs
            .lock()
            .expect("telemetry log poisoned")
            .clone();
        outputs.sort_by(|a, b| a.0.cmp(&b.0));
        outputs
            .into_iter()
            .map(|(_, label, output)| (label, output))
            .collect()
    }

    /// The audit violations collected so far: one rendered report per failed
    /// run, prefixed with the run's fingerprint. Empty when auditing is
    /// disabled or every run conserved.
    pub fn audit_failures(&self) -> Vec<String> {
        self.audit_failures
            .lock()
            .expect("audit log poisoned")
            .clone()
    }

    /// Creates a runner sized to the host's available parallelism.
    pub fn with_default_parallelism() -> Self {
        Self::new(default_parallelism())
    }

    /// The worker-pool size.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// How many simulations have actually been executed (memo hits excluded).
    /// This is the probe the equivalence tests use to assert that shared
    /// baselines are simulated exactly once.
    pub fn runs_executed(&self) -> u64 {
        self.runs_executed.load(Ordering::Relaxed)
    }

    /// How many requests were answered from the memo table instead of being
    /// simulated: requests served so far minus simulations executed.
    /// Duplicate fingerprints within one batch count as hits too.
    pub fn memo_hits(&self) -> u64 {
        self.requests_served
            .load(Ordering::Relaxed)
            .saturating_sub(self.runs_executed())
    }

    /// How many executed simulations hit the engine's step limit (their
    /// [`SimResult::truncated`] flag is set). Harness front ends should warn
    /// when this is nonzero: truncated metrics describe an unfinished run.
    pub fn truncated_runs(&self) -> u64 {
        self.truncated_runs.load(Ordering::Relaxed)
    }

    /// Wall-clock timings of every simulation this runner has executed, in
    /// execution order. Memo hits recall cached results and do not add
    /// entries.
    pub fn run_timings(&self) -> Vec<RunTiming> {
        self.timings.lock().expect("timing log poisoned").clone()
    }

    /// Number of distinct results currently memoized.
    pub fn memoized_results(&self) -> usize {
        self.state.lock().expect("memo table poisoned").done.len()
    }

    /// Runs (or recalls) a single request.
    pub fn run(&self, req: &RunRequest) -> Arc<SimResult> {
        self.run_all(std::slice::from_ref(req))
            .pop()
            .expect("one result per request")
    }

    /// Runs a batch of requests, returning one result per request in order.
    ///
    /// Duplicate fingerprints within the batch, fingerprints already
    /// memoized by earlier batches, and fingerprints claimed by a
    /// concurrently running batch are simulated only once; the runs this
    /// call claims are spread across the worker pool, and results claimed
    /// elsewhere are awaited.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any simulation this call executes (e.g. an
    /// invalid configuration). A panicking run leaves its fingerprint
    /// claimed, so the runner must be discarded afterwards — a concurrent
    /// caller waiting on that fingerprint would block forever.
    pub fn run_all(&self, reqs: &[RunRequest]) -> Vec<Arc<SimResult>> {
        // Decorate requests with this runner's policy overrides; the
        // overrides mutate each request's configuration and therefore its
        // fingerprint, keeping the memo table sound.
        let with_policies: Vec<RunRequest>;
        let reqs: &[RunRequest] = if self.policies.is_empty() {
            reqs
        } else {
            with_policies = reqs
                .iter()
                .map(|r| {
                    let mut sim = r.simulation().clone();
                    for p in &self.policies {
                        p.apply(sim.config_mut());
                    }
                    RunRequest::from_simulation(sim)
                })
                .collect();
            &with_policies
        };
        // Decorate requests with this runner's trace drive; the drive is in
        // the decorated fingerprints, keeping the memo table sound.
        let decorated: Vec<RunRequest>;
        let reqs: &[RunRequest] = if self.drive == TraceDrive::Synthetic {
            reqs
        } else {
            decorated = reqs
                .iter()
                .map(|r| {
                    RunRequest::from_simulation(
                        r.simulation().clone().with_drive(self.drive.clone()),
                    )
                })
                .collect();
            &decorated
        };
        // Claim every fingerprint that is neither memoized nor already being
        // simulated by a concurrent caller.
        let claimed: Vec<&RunRequest> = {
            let mut state = self.state.lock().expect("memo table poisoned");
            reqs.iter()
                .filter(|r| {
                    !state.done.contains_key(r.fingerprint())
                        && state.in_flight.insert(r.fingerprint().to_string())
                })
                .collect()
        };
        if self.jobs == 1 || claimed.len() == 1 {
            // Sequential path: run inline, in enumeration order.
            for req in &claimed {
                self.execute(req);
            }
        } else if !claimed.is_empty() {
            let next = AtomicUsize::new(0);
            let workers = self.jobs.min(claimed.len());
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(req) = claimed.get(i) else { break };
                        self.execute(req);
                    });
                }
            });
        }
        // Collect in request order, waiting out any fingerprints a
        // concurrent caller claimed before we could.
        self.requests_served
            .fetch_add(reqs.len() as u64, Ordering::Relaxed);
        let mut results = Vec::with_capacity(reqs.len());
        let mut state = self.state.lock().expect("memo table poisoned");
        for r in reqs {
            loop {
                if let Some(hit) = state.done.get(r.fingerprint()) {
                    results.push(Arc::clone(hit));
                    break;
                }
                state = self
                    .finished
                    .wait(state)
                    .expect("memo table poisoned while waiting");
            }
        }
        results
    }

    /// Simulates one claimed request and publishes its result.
    fn execute(&self, req: &RunRequest) {
        let started = Instant::now();
        // Telemetry is observe-only and excluded from fingerprints, so the
        // result published under this fingerprint is bit-identical whether
        // or not telemetry rode along with the execution.
        let (result, telemetry) = if self.telemetry.enabled {
            let mut sim = req.simulation().clone();
            sim.config_mut().telemetry = self.telemetry;
            let (result, telemetry) = sim
                .try_run_with_telemetry()
                .expect("trace drive failed during telemetry run");
            (Arc::new(result), telemetry)
        } else {
            (Arc::new(req.simulation().run()), None)
        };
        let wall = started.elapsed();
        self.runs_executed.fetch_add(1, Ordering::Relaxed);
        {
            let work_units = result.requests.total() + result.squashed_accesses;
            let wall_nanos = wall.as_nanos() as u64;
            let units_per_sec = if wall_nanos == 0 {
                0.0
            } else {
                work_units as f64 / (wall_nanos as f64 / 1e9)
            };
            self.timings
                .lock()
                .expect("timing log poisoned")
                .push(RunTiming {
                    variant: req.simulation().config().variant.to_string(),
                    workload: req.simulation().workload().to_string(),
                    wall_nanos,
                    work_units,
                    simulated_nanos: result.exec_time.as_nanos(),
                    units_per_sec,
                    p50_ns: result.latency_hist.p50().as_nanos(),
                    p99_ns: result.latency_hist.p99().as_nanos(),
                    p999_ns: result.latency_hist.p999().as_nanos(),
                });
        }
        if result.truncated {
            self.truncated_runs.fetch_add(1, Ordering::Relaxed);
        }
        if self.audit {
            let final_sample = telemetry.as_ref().map(|t| &t.final_sample);
            let report = crate::audit::audit_with_telemetry(&result, final_sample);
            if !report.is_clean() {
                self.audit_failures
                    .lock()
                    .expect("audit log poisoned")
                    .push(format!("{}: {report}", req.fingerprint()));
            }
        }
        if let Some(output) = telemetry {
            let label = format!(
                "{}/{}",
                req.simulation().config().variant,
                req.simulation().workload()
            );
            self.telemetry_outputs
                .lock()
                .expect("telemetry log poisoned")
                .push((req.fingerprint().to_string(), label, output));
        }
        let mut state = self.state.lock().expect("memo table poisoned");
        state.in_flight.remove(req.fingerprint());
        state.done.insert(req.fingerprint().to_string(), result);
        drop(state);
        self.finished.notify_all();
    }
}

impl Default for Runner {
    /// A runner sized to the host's available parallelism.
    fn default() -> Self {
        Self::with_default_parallelism()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skybyte_types::Nanos;

    fn tiny() -> ExperimentScale {
        ExperimentScale::tiny().with_accesses_per_thread(100)
    }

    #[test]
    fn fingerprints_distinguish_every_knob() {
        let scale = tiny();
        let a = RunRequest::build(VariantKind::BaseCssd, WorkloadKind::Ycsb, &scale);
        let b = RunRequest::build(VariantKind::SkyByteFull, WorkloadKind::Ycsb, &scale);
        let c = RunRequest::build(VariantKind::BaseCssd, WorkloadKind::Bc, &scale);
        let d = RunRequest::build(
            VariantKind::BaseCssd,
            WorkloadKind::Ycsb,
            &scale.with_accesses_per_thread(101),
        );
        let mut cfg = scale.apply(SimConfig::default().with_variant(VariantKind::BaseCssd));
        cfg.cs_threshold = Nanos::from_micros(99);
        let e = RunRequest::with_config(cfg, WorkloadKind::Ycsb, &scale);
        let prints = [&a, &b, &c, &d, &e].map(|r| r.fingerprint().to_string());
        for (i, x) in prints.iter().enumerate() {
            for y in &prints[i + 1..] {
                assert_ne!(x, y);
            }
        }
        // Identical requests share a fingerprint.
        let a2 = RunRequest::build(VariantKind::BaseCssd, WorkloadKind::Ycsb, &scale);
        assert_eq!(a.fingerprint(), a2.fingerprint());
    }

    #[test]
    fn run_memoizes_identical_requests() {
        let scale = tiny();
        let runner = Runner::new(1);
        let req = RunRequest::build(VariantKind::BaseCssd, WorkloadKind::Ycsb, &scale);
        let first = runner.run(&req);
        let second = runner.run(&req);
        assert!(
            Arc::ptr_eq(&first, &second),
            "second run must be a memo hit"
        );
        assert_eq!(runner.runs_executed(), 1);
        assert_eq!(runner.memoized_results(), 1);
    }

    #[test]
    fn run_all_deduplicates_within_a_batch() {
        let scale = tiny();
        let runner = Runner::new(4);
        let reqs = vec![
            RunRequest::build(VariantKind::BaseCssd, WorkloadKind::Ycsb, &scale),
            RunRequest::build(VariantKind::DramOnly, WorkloadKind::Ycsb, &scale),
            RunRequest::build(VariantKind::BaseCssd, WorkloadKind::Ycsb, &scale),
        ];
        let results = runner.run_all(&reqs);
        assert_eq!(results.len(), 3);
        assert_eq!(runner.runs_executed(), 2, "duplicate must not re-run");
        assert!(Arc::ptr_eq(&results[0], &results[2]));
        // A follow-up batch reuses the memo across calls.
        let again = runner.run_all(&reqs);
        assert_eq!(runner.runs_executed(), 2);
        assert!(Arc::ptr_eq(&again[0], &results[0]));
    }

    #[test]
    fn parallel_results_match_sequential_results() {
        let scale = tiny();
        let workloads = [WorkloadKind::Ycsb, WorkloadKind::Bc, WorkloadKind::Srad];
        let reqs: Vec<RunRequest> = workloads
            .iter()
            .flat_map(|&w| {
                [
                    RunRequest::build(VariantKind::BaseCssd, w, &scale),
                    RunRequest::build(VariantKind::SkyByteFull, w, &scale),
                ]
            })
            .collect();
        let seq = Runner::new(1).run_all(&reqs);
        let par = Runner::new(4).run_all(&reqs);
        for (s, p) in seq.iter().zip(&par) {
            assert_eq!(s.exec_time, p.exec_time);
            assert_eq!(s.requests, p.requests);
            assert_eq!(s.flash_pages_programmed, p.flash_pages_programmed);
            assert_eq!(s.context_switches, p.context_switches);
        }
    }

    #[test]
    fn concurrent_callers_share_exactly_one_execution() {
        let scale = tiny();
        let runner = Runner::new(2);
        let reqs: Vec<RunRequest> = [WorkloadKind::Ycsb, WorkloadKind::Bc, WorkloadKind::Srad]
            .iter()
            .map(|&w| RunRequest::build(VariantKind::BaseCssd, w, &scale))
            .collect();
        // Four threads race the same batch through one shared runner: the
        // in-flight claims must keep each unique run at exactly one
        // execution, and every caller must still get all three results.
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    assert_eq!(runner.run_all(&reqs).len(), 3);
                });
            }
        });
        assert_eq!(runner.runs_executed(), 3);
        assert_eq!(runner.memoized_results(), 3);
        assert_eq!(runner.truncated_runs(), 0);
    }

    #[test]
    fn drives_partition_the_memo_table_and_replay_matches_recording() {
        let dir = std::env::temp_dir().join(format!("skybyte-runner-drive-{}", std::process::id()));
        let scale = tiny();
        let req = RunRequest::build(VariantKind::BaseCssd, WorkloadKind::Ycsb, &scale);
        // The drive is part of the decorated fingerprint, so recorded,
        // replayed and plain runs memoize separately…
        let decorated = RunRequest::from_simulation(
            req.simulation()
                .clone()
                .with_drive(crate::engine::TraceDrive::Record { dir: dir.clone() }),
        );
        assert_ne!(req.fingerprint(), decorated.fingerprint());
        // …and a replay-driven runner reproduces the recording bit-exactly.
        let recorder =
            Runner::new(2).with_drive(crate::engine::TraceDrive::Record { dir: dir.clone() });
        let live = recorder.run(&req);
        let replayer =
            Runner::new(2).with_drive(crate::engine::TraceDrive::Replay { dir: dir.clone() });
        let replayed = replayer.run(&req);
        assert_eq!(*live, *replayed);
        assert_eq!(recorder.runs_executed(), 1);
        assert_eq!(replayer.runs_executed(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn policy_overrides_decorate_requests_and_partition_the_memo_table() {
        use skybyte_types::EvictionPolicyKind;
        let scale = tiny();
        let req = RunRequest::build(VariantKind::BaseCssd, WorkloadKind::Ycsb, &scale);
        let plain = Runner::new(1);
        let clocked = Runner::new(1)
            .with_policy_overrides(vec![PolicyOverride::Eviction(EvictionPolicyKind::Clock)]);
        assert_eq!(clocked.policy_overrides().len(), 1);
        let a = plain.run(&req);
        let b = clocked.run(&req);
        // The override lands in the executed configuration and the result.
        assert_eq!(a.policy.eviction, EvictionPolicyKind::PseudoLru);
        assert_eq!(b.policy.eviction, EvictionPolicyKind::Clock);
        // Decoration changes the fingerprint, so a shared runner would keep
        // the two runs distinct in its memo table.
        let decorated = {
            let mut sim = req.simulation().clone();
            PolicyOverride::Eviction(EvictionPolicyKind::Clock).apply(sim.config_mut());
            RunRequest::from_simulation(sim)
        };
        assert_ne!(req.fingerprint(), decorated.fingerprint());
    }

    #[test]
    fn jobs_are_clamped_to_at_least_one() {
        assert_eq!(Runner::new(0).jobs(), 1);
        assert_eq!(Runner::new(7).jobs(), 7);
        assert!(Runner::default().jobs() >= 1);
        assert!(default_parallelism() >= 1);
    }

    #[test]
    fn empty_batches_are_a_no_op() {
        let runner = Runner::new(2);
        assert!(runner.run_all(&[]).is_empty());
        assert_eq!(runner.runs_executed(), 0);
    }
}
