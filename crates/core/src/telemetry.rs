//! Observe-only simulated-time telemetry: periodic metric sampling and a
//! Chrome trace-event timeline.
//!
//! Every number the simulator otherwise emits is an end-of-run aggregate
//! ([`crate::metrics::SimResult`]); this module adds the time axis. Two
//! capture mechanisms share one [`Telemetry`] recorder, armed by
//! [`skybyte_types::TelemetryConfig`] on the simulation config:
//!
//! * a **periodic sampler** — a self-re-enqueuing sentinel event in the
//!   discrete-event queue (core id [`u32::MAX`], so it retires *after* every
//!   real core at an equal timestamp) snapshots queue depths, occupancy and
//!   cumulative counters into a [`MetricsLog`] at a configurable
//!   simulated-time cadence;
//! * a **span/instant layer** — pipeline hooks record per-core
//!   thread-execution slices, flash command service windows, compaction/GC
//!   windows, migrations and context switches into a [`Timeline`] that
//!   renders as Chrome trace-event JSON (loadable in Perfetto or
//!   `chrome://tracing`).
//!
//! Telemetry is strictly **observe-only**: the sampler handler reads state
//! but never mutates it, every hook fires on values the pipeline already
//! computed, and the extra queue events cannot reorder real events (each
//! core has at most one pending event, so `(time, core)` already totally
//! orders them and the sentinel core sorts last). The golden-trace corpus
//! verifies bit-identical with telemetry enabled, and the run fingerprint
//! ignores telemetry settings entirely (see `TelemetryConfig`'s constant
//! `Debug` impl), so memoised runners never split on it. The flip side:
//! a memoised run that was *served from* the memo table executed without
//! telemetry injected and therefore produces no telemetry output.

use serde::{Serialize, Value};
use skybyte_types::{Nanos, TelemetryConfig};
use std::fmt::Write as _;

/// The sentinel "core" id carried by the periodic sampler's event. Larger
/// than any real core index, so at an equal timestamp the sampler observes
/// the state *after* every real core's pass at that instant.
pub const SAMPLER_CORE: u32 = u32::MAX;

/// One row of the periodic metrics time series: instantaneous gauges
/// (queue depths, occupancy, core states) plus the cumulative counters the
/// final-sample agreement invariant ties against `SimResult.layers`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MetricsSample {
    /// Simulated instant the sample was taken.
    pub time: Nanos,
    /// Cores currently executing a thread.
    pub cores_running: u32,
    /// Cores parked by the event engine (nothing runnable, no wake-up).
    pub cores_parked: u32,
    /// Threads runnable but not running.
    pub runnable_threads: u64,
    /// Threads blocked on a wake-up (unfinished − runnable − running).
    pub blocked_threads: u64,
    /// Per-channel flash queue depths (commands accepted, not yet retired).
    pub channel_depths: Vec<u64>,
    /// On-demand cache fills in flight at the controller.
    pub inflight_fills: u64,
    /// Entries resident in the write log's active buffer (0 if disabled).
    pub write_log_entries: u64,
    /// Entry capacity of the write log (0 if disabled).
    pub write_log_capacity: u64,
    /// Whether a log compaction (drain) is running at `time`.
    pub write_log_draining: bool,
    /// Cumulative data-cache hits.
    pub cache_hits: u64,
    /// Cumulative data-cache misses.
    pub cache_misses: u64,
    /// Data-cache hit rate over the window since the previous sample
    /// (falls back to the cumulative rate on the first sample).
    pub window_hit_rate: f64,
    /// Cumulative pages promoted to host DRAM.
    pub pages_promoted: u64,
    /// Cumulative pages demoted back to the SSD.
    pub pages_demoted: u64,
    /// Cumulative migration policy invocations.
    pub migration_runs: u64,
    /// Cumulative write-log compactions.
    pub compactions: u64,
    /// Cumulative garbage-collection campaigns.
    pub gc_campaigns: u64,
    /// Cumulative flash pages programmed.
    pub flash_pages_programmed: u64,
    /// Cumulative flash pages read.
    pub flash_pages_read: u64,
    /// Cumulative SSD controller reads.
    pub ssd_reads: u64,
    /// Cumulative SSD controller writes.
    pub ssd_writes: u64,
    /// Cumulative write-log appends.
    pub write_log_appends: u64,
    /// Cumulative CXL port requests.
    pub cxl_requests: u64,
    /// Cumulative SSD accesses (squashed included).
    pub ssd_accesses: u64,
    /// Cumulative squashed (context-switched) accesses.
    pub squashed_accesses: u64,
    /// Cumulative context switches.
    pub context_switches: u64,
    /// Cumulative accesses attributed to each tenant (host + SSD).
    pub per_tenant_accesses: Vec<u64>,
}

/// The periodic-sampler time series of one run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MetricsLog {
    /// Number of flash channels (fixes the CSV column count).
    pub channels: usize,
    /// Number of tenants (fixes the CSV column count).
    pub tenants: usize,
    /// Samples in increasing time order; the last row is always the final
    /// cumulative sample taken at `exec_time` after the end-of-run flush.
    pub samples: Vec<MetricsSample>,
}

impl MetricsLog {
    fn new(channels: usize, tenants: usize) -> Self {
        MetricsLog {
            channels,
            tenants,
            samples: Vec::new(),
        }
    }

    /// The final cumulative sample (the last row), if any was recorded.
    pub fn final_sample(&self) -> Option<&MetricsSample> {
        self.samples.last()
    }

    /// Serialises the whole log as JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("metrics log serialises")
    }
}

/// Writes the header row of the metrics CSV for the given column dimensions.
fn csv_header(out: &mut String, channels: usize, tenants: usize) {
    out.push_str(
        "run,time_ns,cores_running,cores_parked,runnable_threads,blocked_threads,inflight_fills,\
         write_log_entries,write_log_capacity,write_log_draining,cache_hits,cache_misses,\
         window_hit_rate,pages_promoted,pages_demoted,migration_runs,compactions,gc_campaigns,\
         flash_pages_programmed,flash_pages_read,ssd_reads,ssd_writes,write_log_appends,\
         cxl_requests,ssd_accesses,squashed_accesses,context_switches",
    );
    for c in 0..channels {
        let _ = write!(out, ",chan{c}_depth");
    }
    for t in 0..tenants {
        let _ = write!(out, ",tenant{t}_accesses");
    }
    out.push('\n');
}

fn csv_row(out: &mut String, run: &str, s: &MetricsSample, channels: usize, tenants: usize) {
    let _ = write!(
        out,
        "{run},{},{},{},{},{},{},{},{},{},{},{},{:.6},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
        s.time.as_nanos(),
        s.cores_running,
        s.cores_parked,
        s.runnable_threads,
        s.blocked_threads,
        s.inflight_fills,
        s.write_log_entries,
        s.write_log_capacity,
        u8::from(s.write_log_draining),
        s.cache_hits,
        s.cache_misses,
        s.window_hit_rate,
        s.pages_promoted,
        s.pages_demoted,
        s.migration_runs,
        s.compactions,
        s.gc_campaigns,
        s.flash_pages_programmed,
        s.flash_pages_read,
        s.ssd_reads,
        s.ssd_writes,
        s.write_log_appends,
        s.cxl_requests,
        s.ssd_accesses,
        s.squashed_accesses,
        s.context_switches,
    );
    for c in 0..channels {
        let _ = write!(out, ",{}", s.channel_depths.get(c).copied().unwrap_or(0));
    }
    for t in 0..tenants {
        let _ = write!(
            out,
            ",{}",
            s.per_tenant_accesses.get(t).copied().unwrap_or(0)
        );
    }
    out.push('\n');
}

/// Renders one or more labelled metrics logs as a single CSV with a leading
/// `run` label column. Column dimensions (channels/tenants) take the
/// maximum across runs; shorter rows pad with zeros. Callers must present
/// runs in a deterministic order — the output is byte-stable given one.
pub fn metrics_csv<'a, I>(runs: I) -> String
where
    I: IntoIterator<Item = (&'a str, &'a MetricsLog)> + Clone,
{
    let channels = runs
        .clone()
        .into_iter()
        .map(|(_, l)| l.channels)
        .max()
        .unwrap_or(0);
    let tenants = runs
        .clone()
        .into_iter()
        .map(|(_, l)| l.tenants)
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    csv_header(&mut out, channels, tenants);
    for (label, log) in runs {
        for s in &log.samples {
            csv_row(&mut out, label, s, channels, tenants);
        }
    }
    out
}

/// One event on the span/instant timeline. Times are simulated nanoseconds;
/// the Chrome renderer converts to the trace-event format's microseconds.
#[derive(Debug, Clone, PartialEq)]
pub enum TimelineEvent {
    /// A complete slice (`ph: "X"`) on a track.
    Span {
        /// Display name of the slice.
        name: String,
        /// Trace-event category.
        cat: &'static str,
        /// Track (chrome `tid`) the slice belongs to.
        track: u32,
        /// Slice start.
        start: Nanos,
        /// Slice end (`>= start`).
        end: Nanos,
        /// Numeric arguments shown in the event details pane.
        args: Vec<(&'static str, u64)>,
    },
    /// An instant marker (`ph: "i"`) on a track.
    Instant {
        /// Display name of the marker.
        name: String,
        /// Trace-event category.
        cat: &'static str,
        /// Track (chrome `tid`) the marker belongs to.
        track: u32,
        /// The instant.
        time: Nanos,
        /// Numeric arguments shown in the event details pane.
        args: Vec<(&'static str, u64)>,
    },
}

/// The span/instant event timeline of one run.
///
/// Tracks `0..cores` carry per-core thread-execution slices and
/// context-switch instants; three device tracks follow: flash command
/// service windows, compaction/GC windows, and migration events.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    cores: u32,
    events: Vec<TimelineEvent>,
}

impl Timeline {
    fn new(cores: u32) -> Self {
        Timeline {
            cores,
            events: Vec::new(),
        }
    }

    /// Number of per-core tracks preceding the device tracks.
    pub fn cores(&self) -> u32 {
        self.cores
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[TimelineEvent] {
        &self.events
    }

    fn track_flash(&self) -> u32 {
        self.cores
    }

    fn track_compaction(&self) -> u32 {
        self.cores + 1
    }

    fn track_migration(&self) -> u32 {
        self.cores + 2
    }
}

fn micros(t: Nanos) -> f64 {
    t.as_nanos() as f64 / 1000.0
}

/// Builds a JSON object [`Value`] from `(key, value)` pairs.
fn obj<const N: usize>(fields: [(&str, Value); N]) -> Value {
    Value::Map(fields.map(|(k, v)| (k.to_string(), v)).into())
}

fn args_value(args: &[(&'static str, u64)]) -> Value {
    Value::Map(
        args.iter()
            .map(|&(k, v)| (k.to_string(), Value::UInt(v)))
            .collect(),
    )
}

fn metadata_event(name: &str, pid: u32, tid: u32, value: &str) -> Value {
    obj([
        ("name", Value::Str(name.to_string())),
        ("ph", Value::Str("M".to_string())),
        ("pid", Value::UInt(u64::from(pid))),
        ("tid", Value::UInt(u64::from(tid))),
        ("args", obj([("name", Value::Str(value.to_string()))])),
    ])
}

/// Renders one or more labelled timelines as a Chrome trace-event JSON
/// document (an array of event objects, loadable in Perfetto or
/// `chrome://tracing`). Each run becomes one process (`pid`), named by its
/// label via `process_name` metadata; tracks get `thread_name` metadata.
pub fn chrome_trace_json<'a, I>(runs: I) -> String
where
    I: IntoIterator<Item = (&'a str, &'a Timeline)>,
{
    let mut events: Vec<Value> = Vec::new();
    for (pid, (label, timeline)) in runs.into_iter().enumerate() {
        let pid = pid as u32;
        events.push(metadata_event("process_name", pid, 0, label));
        for core in 0..timeline.cores() {
            events.push(metadata_event(
                "thread_name",
                pid,
                core,
                &format!("core {core}"),
            ));
        }
        for (track, name) in [
            (timeline.track_flash(), "flash"),
            (timeline.track_compaction(), "compaction/gc"),
            (timeline.track_migration(), "migration"),
        ] {
            events.push(metadata_event("thread_name", pid, track, name));
        }
        for ev in timeline.events() {
            events.push(match ev {
                TimelineEvent::Span {
                    name,
                    cat,
                    track,
                    start,
                    end,
                    args,
                } => obj([
                    ("name", Value::Str(name.clone())),
                    ("cat", Value::Str((*cat).to_string())),
                    ("ph", Value::Str("X".to_string())),
                    ("pid", Value::UInt(u64::from(pid))),
                    ("tid", Value::UInt(u64::from(*track))),
                    ("ts", Value::Float(micros(*start))),
                    ("dur", Value::Float(micros(end.since(*start)))),
                    ("args", args_value(args)),
                ]),
                TimelineEvent::Instant {
                    name,
                    cat,
                    track,
                    time,
                    args,
                } => obj([
                    ("name", Value::Str(name.clone())),
                    ("cat", Value::Str((*cat).to_string())),
                    ("ph", Value::Str("i".to_string())),
                    ("s", Value::Str("t".to_string())),
                    ("pid", Value::UInt(u64::from(pid))),
                    ("tid", Value::UInt(u64::from(*track))),
                    ("ts", Value::Float(micros(*time))),
                    ("args", args_value(args)),
                ]),
            });
        }
    }
    serde_json::to_string(&Value::Seq(events)).expect("timeline serialises")
}

/// Everything telemetry captured over one run.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryOutput {
    /// The periodic-sampler time series (final cumulative row included).
    pub metrics: MetricsLog,
    /// The span/instant event timeline.
    pub timeline: Timeline,
    /// The final cumulative sample, taken at `exec_time` after the
    /// end-of-run flush — the row the `telemetry-final-agreement` audit
    /// invariant ties against `SimResult.layers`.
    pub final_sample: MetricsSample,
}

/// One core's currently open thread-execution slice.
#[derive(Debug, Clone, Copy)]
struct OpenSlice {
    tid: u32,
    start: Nanos,
    end: Nanos,
}

/// The per-run telemetry recorder owned by the system state. All methods
/// only append to internal buffers — the recorder can observe the
/// simulation but never influence it.
#[derive(Debug)]
pub struct Telemetry {
    cfg: TelemetryConfig,
    metrics: MetricsLog,
    timeline: Timeline,
    // Window state for the per-sample hit rate.
    window_hits: u64,
    window_misses: u64,
    // Per-core open thread-execution slices (merged across contiguous
    // passes of the same thread so the timeline stays compact).
    open: Vec<Option<OpenSlice>>,
}

impl Telemetry {
    /// Creates a recorder for a run with the given dimensions.
    pub fn new(cfg: TelemetryConfig, cores: u32, channels: usize, tenants: usize) -> Self {
        Telemetry {
            cfg,
            metrics: MetricsLog::new(channels, tenants),
            timeline: Timeline::new(cores),
            window_hits: 0,
            window_misses: 0,
            open: vec![None; cores as usize],
        }
    }

    /// The capture configuration this recorder was armed with.
    pub fn config(&self) -> &TelemetryConfig {
        &self.cfg
    }

    /// Whether span/instant capture is on (the sampler is always on).
    pub fn timeline_on(&self) -> bool {
        self.cfg.timeline
    }

    /// Records one metrics sample, deriving its windowed hit rate from the
    /// cumulative hit/miss counters of the previous sample.
    pub fn record_sample(&mut self, mut sample: MetricsSample) {
        let dh = sample.cache_hits - self.window_hits;
        let dm = sample.cache_misses - self.window_misses;
        sample.window_hit_rate = if dh + dm > 0 {
            dh as f64 / (dh + dm) as f64
        } else {
            0.0
        };
        self.window_hits = sample.cache_hits;
        self.window_misses = sample.cache_misses;
        self.metrics.samples.push(sample);
    }

    /// Accounts one pipeline pass of `tid` on `core` over `[start, end]`,
    /// merging it into the core's open slice when contiguous.
    pub fn thread_pass(&mut self, core: usize, tid: u32, start: Nanos, end: Nanos) {
        if !self.cfg.timeline {
            return;
        }
        match self.open[core] {
            Some(ref mut slice) if slice.tid == tid && slice.end == start => {
                slice.end = end;
            }
            ref mut open => {
                if let Some(slice) = open.take() {
                    let ev = slice_event(core as u32, slice);
                    self.timeline.events.push(ev);
                }
                *open = Some(OpenSlice { tid, start, end });
            }
        }
    }

    /// Marks a device-triggered context switch away from `tid` on `core`.
    pub fn context_switch(&mut self, core: usize, time: Nanos, tid: u32, wake: Nanos) {
        if !self.cfg.timeline {
            return;
        }
        // The switch also ends the thread's execution slice.
        if let Some(slice) = self.open[core].take() {
            let ev = slice_event(core as u32, slice);
            self.timeline.events.push(ev);
        }
        self.timeline.events.push(TimelineEvent::Instant {
            name: "context-switch".to_string(),
            cat: "sched",
            track: core as u32,
            time,
            args: vec![("thread", u64::from(tid)), ("wake_ns", wake.as_nanos())],
        });
    }

    /// Records a flash command service window `[arrival, done]` with its
    /// latency breakdown components.
    pub fn flash_window(
        &mut self,
        write: bool,
        arrival: Nanos,
        done: Nanos,
        indexing: Nanos,
        ssd_dram: Nanos,
        flash: Nanos,
    ) {
        if !self.cfg.timeline || done < arrival {
            return;
        }
        let track = self.timeline.track_flash();
        self.timeline.events.push(TimelineEvent::Span {
            name: if write { "flash-write" } else { "flash-read" }.to_string(),
            cat: "flash",
            track,
            start: arrival,
            end: done,
            args: vec![
                ("indexing_ns", indexing.as_nanos()),
                ("ssd_dram_ns", ssd_dram.as_nanos()),
                ("flash_ns", flash.as_nanos()),
            ],
        });
    }

    /// Records a write-log compaction window `[start, until]`.
    pub fn compaction_window(&mut self, start: Nanos, until: Nanos, compactions: u64) {
        if !self.cfg.timeline || until < start {
            return;
        }
        let track = self.timeline.track_compaction();
        self.timeline.events.push(TimelineEvent::Span {
            name: "compaction".to_string(),
            cat: "device",
            track,
            start,
            end: until,
            args: vec![("compactions", compactions)],
        });
    }

    /// Marks one or more garbage-collection campaigns triggered at `time`.
    pub fn gc_campaign(&mut self, time: Nanos, campaigns: u64) {
        if !self.cfg.timeline {
            return;
        }
        let track = self.timeline.track_compaction();
        self.timeline.events.push(TimelineEvent::Instant {
            name: "gc-campaign".to_string(),
            cat: "device",
            track,
            time,
            args: vec![("campaigns", campaigns)],
        });
    }

    /// Marks a migration-policy invocation at `time` that moved pages.
    pub fn migration_event(&mut self, time: Nanos, promoted: u64, demoted: u64) {
        if !self.cfg.timeline {
            return;
        }
        let track = self.timeline.track_migration();
        self.timeline.events.push(TimelineEvent::Instant {
            name: "migration".to_string(),
            cat: "migration",
            track,
            time,
            args: vec![("promoted", promoted), ("demoted", demoted)],
        });
    }

    /// Closes the run: flushes open slices, records the final cumulative
    /// sample (taken at `exec_time` after the end-of-run device flush) and
    /// hands the captured data back.
    pub fn finish(mut self, final_sample: MetricsSample) -> TelemetryOutput {
        for core in 0..self.open.len() {
            if let Some(slice) = self.open[core].take() {
                let ev = slice_event(core as u32, slice);
                self.timeline.events.push(ev);
            }
        }
        self.record_sample(final_sample);
        let final_sample = self
            .metrics
            .samples
            .last()
            .expect("finish just recorded the final sample")
            .clone();
        TelemetryOutput {
            metrics: self.metrics,
            timeline: self.timeline,
            final_sample,
        }
    }
}

fn slice_event(track: u32, slice: OpenSlice) -> TimelineEvent {
    TimelineEvent::Span {
        name: format!("T{}", slice.tid),
        cat: "thread",
        track,
        start: slice.start,
        end: slice.end,
        args: vec![("thread", u64::from(slice.tid))],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(time: u64, hits: u64, misses: u64) -> MetricsSample {
        MetricsSample {
            time: Nanos::new(time),
            cores_running: 1,
            cores_parked: 0,
            runnable_threads: 0,
            blocked_threads: 0,
            channel_depths: vec![2, 0],
            inflight_fills: 0,
            write_log_entries: 3,
            write_log_capacity: 16,
            write_log_draining: false,
            cache_hits: hits,
            cache_misses: misses,
            window_hit_rate: 0.0,
            pages_promoted: 0,
            pages_demoted: 0,
            migration_runs: 0,
            compactions: 0,
            gc_campaigns: 0,
            flash_pages_programmed: 1,
            flash_pages_read: 2,
            ssd_reads: 3,
            ssd_writes: 4,
            write_log_appends: 5,
            cxl_requests: 6,
            ssd_accesses: 7,
            squashed_accesses: 0,
            context_switches: 0,
            per_tenant_accesses: vec![7],
        }
    }

    fn recorder() -> Telemetry {
        let cfg = TelemetryConfig {
            enabled: true,
            sample_interval: Nanos::from_micros(10),
            timeline: true,
        };
        Telemetry::new(cfg, 2, 2, 1)
    }

    #[test]
    fn window_hit_rate_is_per_window_not_cumulative() {
        let mut tel = recorder();
        tel.record_sample(sample(10, 8, 2)); // 80% cumulative and windowed
        tel.record_sample(sample(20, 8, 12)); // window: 0 hits, 10 misses
        let out = tel.finish(sample(30, 18, 12)); // window: 10 hits, 0 misses
        let rates: Vec<f64> = out
            .metrics
            .samples
            .iter()
            .map(|s| s.window_hit_rate)
            .collect();
        assert_eq!(rates, vec![0.8, 0.0, 1.0]);
        assert_eq!(out.final_sample.time, Nanos::new(30));
        assert_eq!(out.metrics.final_sample(), Some(&out.final_sample));
    }

    #[test]
    fn contiguous_thread_passes_merge_into_one_slice() {
        let mut tel = recorder();
        tel.thread_pass(0, 7, Nanos::new(0), Nanos::new(100));
        tel.thread_pass(0, 7, Nanos::new(100), Nanos::new(250));
        // A gap splits the slice even for the same thread.
        tel.thread_pass(0, 7, Nanos::new(400), Nanos::new(500));
        let out = tel.finish(sample(500, 0, 0));
        let spans: Vec<(Nanos, Nanos)> = out
            .timeline
            .events()
            .iter()
            .filter_map(|e| match e {
                TimelineEvent::Span { start, end, .. } => Some((*start, *end)),
                TimelineEvent::Instant { .. } => None,
            })
            .collect();
        assert_eq!(
            spans,
            vec![
                (Nanos::new(0), Nanos::new(250)),
                (Nanos::new(400), Nanos::new(500)),
            ]
        );
    }

    #[test]
    fn chrome_json_is_a_wellformed_event_array() {
        let mut tel = recorder();
        tel.thread_pass(0, 1, Nanos::new(0), Nanos::new(1_000));
        tel.context_switch(0, Nanos::new(1_000), 1, Nanos::new(9_000));
        tel.flash_window(
            false,
            Nanos::new(100),
            Nanos::new(3_100),
            Nanos::new(50),
            Nanos::new(50),
            Nanos::new(3_000),
        );
        let out = tel.finish(sample(2_000, 0, 0));
        let json = chrome_trace_json([("run-a", &out.timeline)]);
        let parsed: Value = serde_json::from_str(&json).unwrap();
        let events = match &parsed {
            Value::Seq(events) => events,
            other => panic!("expected a top-level event array, got {other:?}"),
        };
        assert!(!events.is_empty());
        let get = |ev: &Value, key: &str| -> Option<Value> {
            match ev {
                Value::Map(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone()),
                _ => None,
            }
        };
        let mut saw_process_name = false;
        for ev in events {
            let ph = match get(ev, "ph") {
                Some(Value::Str(s)) => s,
                other => panic!("event without ph: {other:?}"),
            };
            assert!(matches!(ph.as_str(), "M" | "X" | "i"));
            assert!(matches!(get(ev, "pid"), Some(Value::UInt(_))));
            assert!(matches!(get(ev, "tid"), Some(Value::UInt(_))));
            if ph != "M" {
                assert!(matches!(get(ev, "ts"), Some(Value::Float(_))));
            }
            if ph == "X" {
                assert!(matches!(get(ev, "dur"), Some(Value::Float(_))));
            }
            // The process is named after the run label.
            if get(ev, "name") == Some(Value::Str("process_name".to_string())) {
                let args = get(ev, "args").expect("metadata args");
                assert_eq!(get(&args, "name"), Some(Value::Str("run-a".to_string())));
                saw_process_name = true;
            }
        }
        assert!(saw_process_name);
    }

    #[test]
    fn merged_csv_pads_to_the_widest_run_and_labels_rows() {
        let mut a = recorder();
        a.record_sample(sample(10, 1, 1));
        let a = a.finish(sample(20, 2, 2));
        let cfg = TelemetryConfig {
            enabled: true,
            sample_interval: Nanos::from_micros(10),
            timeline: false,
        };
        let mut b = Telemetry::new(cfg, 1, 4, 2);
        let mut s = sample(10, 0, 0);
        s.channel_depths = vec![1, 2, 3, 4];
        s.per_tenant_accesses = vec![5, 6];
        b.record_sample(s.clone());
        let b = b.finish(s);
        let csv = metrics_csv([("a", &a.metrics), ("b", &b.metrics)]);
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("run,time_ns,"));
        assert!(header.contains("chan3_depth") && header.contains("tenant1_accesses"));
        let width = header.split(',').count();
        for line in lines {
            assert_eq!(line.split(',').count(), width, "ragged row: {line}");
        }
        assert_eq!(csv.lines().filter(|l| l.starts_with("a,")).count(), 2);
        assert_eq!(csv.lines().filter(|l| l.starts_with("b,")).count(), 2);
    }
}
