//! The host cache hierarchy: per-core L1D and L2 plus a shared LLC.
//!
//! The hierarchy is modelled as inclusive, set-associative, LRU caches over
//! cacheline addresses. It answers a single question for the simulator: at
//! which level does an access hit, and therefore how much latency it pays
//! before going off-chip. The shared LLC owns the MSHR file that SkyByte's
//! coordinated context switch interrogates to find the instructions waiting
//! on a CXL response (and frees eagerly when they are squashed, §III-A).

use serde::{Deserialize, Serialize};
use skybyte_cache::MshrFile;
use skybyte_types::{CacheLevelConfig, CpuConfig, Nanos, VirtAddr, CACHELINE_SIZE};

/// The level at which an access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HitLevel {
    /// Hit in the core's L1 data cache.
    L1,
    /// Hit in the core's private L2.
    L2,
    /// Hit in the shared last-level cache.
    Llc,
    /// Missed the whole hierarchy: the access goes off-chip.
    Miss,
}

impl HitLevel {
    /// Whether the access left the chip.
    pub fn is_off_chip(self) -> bool {
        matches!(self, HitLevel::Miss)
    }
}

/// One set-associative, LRU cache level over cacheline addresses.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheLevel {
    sets: Vec<Vec<(u64, u64)>>, // (line address, last-use tick)
    ways: usize,
    hit_latency: Nanos,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl CacheLevel {
    /// Creates a level from its configuration.
    pub fn new(cfg: &CacheLevelConfig) -> Self {
        let sets = cfg.sets() as usize;
        CacheLevel {
            sets: vec![Vec::new(); sets.max(1)],
            ways: cfg.ways as usize,
            hit_latency: cfg.hit_latency,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn set_of(&self, line: u64) -> usize {
        (line % self.sets.len() as u64) as usize
    }

    /// Accesses a cacheline: returns `true` on hit. A miss inserts the line
    /// (allocate-on-miss), evicting the set's LRU line if needed.
    pub fn access(&mut self, line: u64) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let ways = self.ways;
        let set_idx = self.set_of(line);
        let set = &mut self.sets[set_idx];
        if let Some(entry) = set.iter_mut().find(|(l, _)| *l == line) {
            entry.1 = tick;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if set.len() >= ways {
            let lru = set
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(i, _)| i)
                .expect("set not empty");
            set.swap_remove(lru);
        }
        set.push((line, tick));
        false
    }

    /// Removes a cacheline (invalidation), returning whether it was present.
    pub fn invalidate(&mut self, line: u64) -> bool {
        let set_idx = self.set_of(line);
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|(l, _)| *l == line) {
            set.swap_remove(pos);
            true
        } else {
            false
        }
    }

    /// Hit latency of this level.
    pub fn hit_latency(&self) -> Nanos {
        self.hit_latency
    }

    /// (hits, misses) counters.
    pub fn hit_miss(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// The full host hierarchy: per-core L1/L2, shared LLC, shared LLC MSHRs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheHierarchy {
    l1: Vec<CacheLevel>,
    l2: Vec<CacheLevel>,
    llc: CacheLevel,
    llc_mshrs: MshrFile<u64, u32>,
    accesses: u64,
    off_chip: u64,
}

impl CacheHierarchy {
    /// Builds the hierarchy for `cfg.cores` cores using the Table II sizes.
    pub fn new(cfg: &CpuConfig) -> Self {
        CacheHierarchy {
            l1: (0..cfg.cores).map(|_| CacheLevel::new(&cfg.l1d)).collect(),
            l2: (0..cfg.cores).map(|_| CacheLevel::new(&cfg.l2)).collect(),
            llc: CacheLevel::new(&cfg.llc),
            llc_mshrs: MshrFile::new(cfg.llc.mshrs as usize),
            accesses: 0,
            off_chip: 0,
        }
    }

    fn line_of(addr: VirtAddr) -> u64 {
        addr.as_u64() / CACHELINE_SIZE as u64
    }

    /// Performs an access from `core` and returns where it hit together with
    /// the on-chip latency paid up to (and including) that level.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access(&mut self, core: usize, addr: VirtAddr) -> (HitLevel, Nanos) {
        assert!(core < self.l1.len(), "core {core} out of range");
        self.accesses += 1;
        let line = Self::line_of(addr);
        let l1_lat = self.l1[core].hit_latency();
        if self.l1[core].access(line) {
            return (HitLevel::L1, l1_lat);
        }
        let l2_lat = self.l2[core].hit_latency();
        if self.l2[core].access(line) {
            return (HitLevel::L2, l1_lat + l2_lat);
        }
        let llc_lat = self.llc.hit_latency();
        if self.llc.access(line) {
            return (HitLevel::Llc, l1_lat + l2_lat + llc_lat);
        }
        self.off_chip += 1;
        (HitLevel::Miss, l1_lat + l2_lat + llc_lat)
    }

    /// Invalidates a cacheline everywhere (used for TLB-shootdown-style
    /// invalidations after page migration).
    pub fn invalidate_line(&mut self, addr: VirtAddr) {
        let line = Self::line_of(addr);
        for l1 in &mut self.l1 {
            l1.invalidate(line);
        }
        for l2 in &mut self.l2 {
            l2.invalidate(line);
        }
        self.llc.invalidate(line);
    }

    /// Allocates (or merges into) an LLC MSHR for an off-chip access; the
    /// waiter is an opaque identifier chosen by the caller (core id, thread
    /// id, …).
    pub fn allocate_mshr(&mut self, addr: VirtAddr, waiter: u32) -> skybyte_cache::MshrOutcome {
        self.llc_mshrs.allocate(Self::line_of(addr), waiter)
    }

    /// Completes an off-chip fill, returning the waiters to wake.
    pub fn complete_mshr(&mut self, addr: VirtAddr) -> Vec<u32> {
        self.llc_mshrs.complete(&Self::line_of(addr))
    }

    /// Eagerly frees the MSHR waiter of a squashed instruction (§III-A).
    pub fn release_mshr_waiter(&mut self, addr: VirtAddr, waiter: u32) -> bool {
        self.llc_mshrs
            .remove_waiter(&Self::line_of(addr), |w| *w == waiter)
    }

    /// Current LLC MSHR occupancy.
    pub fn mshr_occupancy(&self) -> usize {
        self.llc_mshrs.occupancy()
    }

    /// Fraction of accesses that went off-chip (the modelled LLC miss ratio).
    pub fn off_chip_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.off_chip as f64 / self.accesses as f64
        }
    }

    /// Total accesses observed.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skybyte_cache::MshrOutcome;

    fn small_cpu() -> CpuConfig {
        let mut cfg = CpuConfig {
            cores: 2,
            ..CpuConfig::default()
        };
        cfg.l1d.size_bytes = 4 * 64; // 4 lines
        cfg.l1d.ways = 2;
        cfg.l2.size_bytes = 8 * 64;
        cfg.l2.ways = 2;
        cfg.llc.size_bytes = 16 * 64;
        cfg.llc.ways = 4;
        cfg.llc.mshrs = 4;
        cfg
    }

    #[test]
    fn first_access_misses_then_hits_l1() {
        let mut h = CacheHierarchy::new(&small_cpu());
        let a = VirtAddr::new(0x1000);
        let (lvl, _) = h.access(0, a);
        assert_eq!(lvl, HitLevel::Miss);
        assert!(lvl.is_off_chip());
        let (lvl, lat) = h.access(0, a);
        assert_eq!(lvl, HitLevel::L1);
        assert_eq!(lat, Nanos::new(1));
    }

    #[test]
    fn private_caches_are_per_core() {
        let mut h = CacheHierarchy::new(&small_cpu());
        let a = VirtAddr::new(0x2000);
        h.access(0, a);
        // Core 1 misses its private levels but hits the shared LLC.
        let (lvl, _) = h.access(1, a);
        assert_eq!(lvl, HitLevel::Llc);
    }

    #[test]
    fn capacity_evictions_fall_through_levels() {
        let cfg = small_cpu();
        let mut h = CacheHierarchy::new(&cfg);
        // Touch far more lines than the LLC holds; later re-touch the first
        // line: it should have been evicted from everything.
        for i in 0..200u64 {
            h.access(0, VirtAddr::new(i * 64));
        }
        let (lvl, _) = h.access(0, VirtAddr::new(0));
        assert_eq!(lvl, HitLevel::Miss);
        assert!(h.off_chip_ratio() > 0.5);
        assert_eq!(h.accesses(), 201);
    }

    #[test]
    fn invalidate_line_removes_from_all_levels() {
        let mut h = CacheHierarchy::new(&small_cpu());
        let a = VirtAddr::new(0x3000);
        h.access(0, a);
        h.access(0, a);
        h.invalidate_line(a);
        let (lvl, _) = h.access(0, a);
        assert_eq!(lvl, HitLevel::Miss);
    }

    #[test]
    fn mshr_allocation_and_eager_release() {
        let mut h = CacheHierarchy::new(&small_cpu());
        let a = VirtAddr::new(0x4000);
        assert_eq!(h.allocate_mshr(a, 1), MshrOutcome::NewMiss);
        assert_eq!(h.allocate_mshr(a, 2), MshrOutcome::Merged);
        assert_eq!(h.mshr_occupancy(), 1);
        // Squash waiter 1: MSHR stays for waiter 2.
        assert!(!h.release_mshr_waiter(a, 1));
        assert_eq!(h.complete_mshr(a), vec![2]);
        assert_eq!(h.mshr_occupancy(), 0);
    }

    #[test]
    fn mshr_capacity_enforced() {
        let mut h = CacheHierarchy::new(&small_cpu());
        for i in 0..4u64 {
            assert_eq!(
                h.allocate_mshr(VirtAddr::new(i * 64), i as u32),
                MshrOutcome::NewMiss
            );
        }
        assert_eq!(
            h.allocate_mshr(VirtAddr::new(99 * 64), 99),
            MshrOutcome::Full
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_core_index() {
        let mut h = CacheHierarchy::new(&small_cpu());
        h.access(5, VirtAddr::new(0));
    }
}
