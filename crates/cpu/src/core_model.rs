//! The MLP-limited core timing model and boundedness accounting.
//!
//! Following the paper's methodology (§II-C), a cycle is *bounded by memory*
//! if nothing but memory operations is in flight during it, and *bounded by
//! compute* otherwise. In the work-unit model of this simulator every thread
//! alternates between a compute burst and an off-chip memory access, so the
//! accounting reduces to: compute bursts are compute-bounded; the part of a
//! memory access the out-of-order window cannot hide is memory-bounded.

use serde::{Deserialize, Serialize};
use skybyte_types::{CpuConfig, Freq, Nanos, RatioBreakdown};

/// Converts instruction counts to time and bounds how much off-chip latency
/// the out-of-order engine can overlap with useful work.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreTimingModel {
    freq: Freq,
    base_ipc: f64,
    rob_entries: u32,
    mem_op_fraction: f64,
}

impl CoreTimingModel {
    /// Creates the model from the CPU configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has a non-positive IPC.
    pub fn new(cfg: &CpuConfig) -> Self {
        assert!(cfg.base_ipc > 0.0, "base IPC must be positive");
        CoreTimingModel {
            freq: cfg.freq,
            base_ipc: cfg.base_ipc,
            rob_entries: cfg.rob_entries,
            mem_op_fraction: cfg.mem_op_fraction,
        }
    }

    /// Time needed to execute `instructions` non-stalled instructions.
    pub fn compute_time(&self, instructions: u64) -> Nanos {
        if instructions == 0 {
            return Nanos::ZERO;
        }
        let cycles = (instructions as f64 / self.base_ipc).ceil() as u64;
        self.freq.cycles_to_nanos(cycles)
    }

    /// The amount of latency the out-of-order window can hide behind one
    /// off-chip access: the time to drain a full ROB at the base IPC
    /// (256 entries / IPC 2 at 4 GHz ≈ 32 ns, far below flash latency, which
    /// is exactly the motivation for coordinated context switches).
    pub fn overlap_window(&self) -> Nanos {
        let cycles = (self.rob_entries as f64 / self.base_ipc).ceil() as u64;
        self.freq.cycles_to_nanos(cycles)
    }

    /// The stall time actually exposed to the pipeline for an off-chip access
    /// of the given latency.
    pub fn effective_stall(&self, latency: Nanos) -> Nanos {
        latency.saturating_sub(self.overlap_window())
    }

    /// Maximum number of independent off-chip misses the core can keep in
    /// flight, limited by the ROB size and the fraction of instructions that
    /// are memory operations. This bounds how well a single thread can
    /// saturate the CXL link (the "35 vs 750 outstanding requests" argument
    /// of §II-C).
    pub fn mlp_limit(&self, llc_mpki: f64) -> u32 {
        if llc_mpki <= 0.0 {
            return 1;
        }
        // Instructions between consecutive LLC misses.
        let inst_per_miss = 1000.0 / llc_mpki;
        let window_misses = (self.rob_entries as f64 / inst_per_miss).floor() as u32;
        window_misses.clamp(1, (self.rob_entries as f64 * self.mem_op_fraction) as u32)
    }

    /// The clock frequency.
    pub fn freq(&self) -> Freq {
        self.freq
    }
}

/// Accumulates the memory/compute/context-switch time breakdown of one core
/// or one whole run (Figures 4 and 10).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Boundedness {
    /// Time bounded by compute.
    pub compute: Nanos,
    /// Time bounded by memory (exposed stalls).
    pub memory: Nanos,
    /// Time spent performing context switches.
    pub context_switch: Nanos,
    /// Time the core sat idle with no runnable thread.
    pub idle: Nanos,
}

impl Boundedness {
    /// Total accounted time.
    pub fn total(&self) -> Nanos {
        self.compute + self.memory + self.context_switch + self.idle
    }

    /// Fraction of non-idle time bounded by memory.
    pub fn memory_fraction(&self) -> f64 {
        let busy = self.compute + self.memory + self.context_switch;
        if busy == Nanos::ZERO {
            return 0.0;
        }
        self.memory.as_nanos() as f64 / busy.as_nanos() as f64
    }

    /// Fraction of non-idle time bounded by compute.
    pub fn compute_fraction(&self) -> f64 {
        let busy = self.compute + self.memory + self.context_switch;
        if busy == Nanos::ZERO {
            return 0.0;
        }
        self.compute.as_nanos() as f64 / busy.as_nanos() as f64
    }

    /// Fraction of non-idle time spent context switching.
    pub fn context_switch_fraction(&self) -> f64 {
        let busy = self.compute + self.memory + self.context_switch;
        if busy == Nanos::ZERO {
            return 0.0;
        }
        self.context_switch.as_nanos() as f64 / busy.as_nanos() as f64
    }

    /// Merges the accounting of another core into this one.
    pub fn merge(&mut self, other: &Boundedness) {
        self.compute += other.compute;
        self.memory += other.memory;
        self.context_switch += other.context_switch;
        self.idle += other.idle;
    }

    /// Converts to the named breakdown used by the figure printers.
    pub fn to_breakdown(&self) -> RatioBreakdown {
        let mut b = RatioBreakdown::new();
        b.add("compute", self.compute.as_nanos() as f64);
        b.add("memory", self.memory.as_nanos() as f64);
        b.add("context_switch", self.context_switch.as_nanos() as f64);
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CoreTimingModel {
        CoreTimingModel::new(&CpuConfig::default())
    }

    #[test]
    fn compute_time_scales_with_instructions() {
        let m = model();
        assert_eq!(m.compute_time(0), Nanos::ZERO);
        // 8000 instructions / IPC 2 = 4000 cycles = 1 µs at 4 GHz.
        assert_eq!(m.compute_time(8000), Nanos::from_micros(1));
        assert!(m.compute_time(100) > Nanos::ZERO);
    }

    #[test]
    fn overlap_window_matches_rob() {
        let m = model();
        // 256 / 2 = 128 cycles = 32 ns.
        assert_eq!(m.overlap_window(), Nanos::new(32));
        // Host DRAM (~70 ns) is partially hidden; flash (3 µs) is not.
        assert_eq!(m.effective_stall(Nanos::new(70)), Nanos::new(38));
        assert_eq!(
            m.effective_stall(Nanos::from_micros(3)),
            Nanos::new(3000 - 32)
        );
        assert_eq!(m.effective_stall(Nanos::new(10)), Nanos::ZERO);
    }

    #[test]
    fn mlp_limit_bounds() {
        let m = model();
        // Dense-miss workload (bfs-dense: 122.9 MPKI): many misses in window.
        let dense = m.mlp_limit(122.9);
        // Sparse-miss workload (tpcc: 1.0 MPKI): one miss per window.
        let sparse = m.mlp_limit(1.0);
        assert!(dense > sparse);
        assert_eq!(sparse, 1);
        assert!(dense <= (256.0 * 0.3) as u32);
        assert_eq!(m.mlp_limit(0.0), 1);
    }

    #[test]
    fn boundedness_fractions_sum_to_one() {
        let b = Boundedness {
            compute: Nanos::new(250),
            memory: Nanos::new(700),
            context_switch: Nanos::new(50),
            idle: Nanos::new(123),
        };
        let total = b.memory_fraction() + b.compute_fraction() + b.context_switch_fraction();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(b.total(), Nanos::new(1123));
        let breakdown = b.to_breakdown();
        assert!((breakdown.fraction("memory") - 0.7).abs() < 1e-9);
    }

    #[test]
    fn boundedness_empty_is_zero() {
        let b = Boundedness::default();
        assert_eq!(b.memory_fraction(), 0.0);
        assert_eq!(b.compute_fraction(), 0.0);
        assert_eq!(b.context_switch_fraction(), 0.0);
    }

    #[test]
    fn boundedness_merge_adds_components() {
        let mut a = Boundedness {
            compute: Nanos::new(10),
            memory: Nanos::new(20),
            context_switch: Nanos::new(1),
            idle: Nanos::new(2),
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.compute, Nanos::new(20));
        assert_eq!(a.memory, Nanos::new(40));
        assert_eq!(a.idle, Nanos::new(4));
    }
}
