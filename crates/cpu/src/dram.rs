//! Host DRAM timing model (DDR5 in Table II).

use serde::{Deserialize, Serialize};
use skybyte_types::{HostDramConfig, Nanos, CACHELINE_SIZE};

/// Traffic statistics of the host memory controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostDramStats {
    /// Cacheline accesses served.
    pub accesses: u64,
    /// Bytes moved.
    pub bytes: u64,
}

/// A bandwidth- and latency-constrained host DRAM model.
///
/// Each access pays the configured access latency; sustained throughput is
/// capped by the aggregate channel bandwidth, modelled with a single
/// busy-until horizon (requests arriving faster than the channels can drain
/// queue up).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HostDram {
    access_latency: Nanos,
    bandwidth_bps: u64,
    busy_until: Nanos,
    busy_time: Nanos,
    stats: HostDramStats,
}

impl HostDram {
    /// Creates the model from the host DRAM configuration.
    pub fn new(cfg: &HostDramConfig) -> Self {
        HostDram {
            access_latency: cfg.timing.access_latency,
            bandwidth_bps: cfg.timing.total_bandwidth_bps(),
            busy_until: Nanos::ZERO,
            busy_time: Nanos::ZERO,
            stats: HostDramStats::default(),
        }
    }

    /// Serves one cacheline access issued at `now`; returns its completion
    /// time.
    pub fn access(&mut self, now: Nanos) -> Nanos {
        self.transfer(now, CACHELINE_SIZE as u64)
    }

    /// Serves a bulk transfer of `bytes` (page-migration copies).
    pub fn transfer(&mut self, now: Nanos, bytes: u64) -> Nanos {
        self.stats.accesses += 1;
        self.stats.bytes += bytes;
        let serialisation_ns = ((bytes as f64) * 1e9 / self.bandwidth_bps as f64)
            .ceil()
            .max(1.0) as u64;
        let serialisation = Nanos::new(serialisation_ns);
        let start = now.max(self.busy_until.saturating_sub(self.access_latency));
        self.busy_until = start + serialisation + self.access_latency;
        self.busy_time += serialisation;
        start + self.access_latency
    }

    /// The fixed access latency.
    pub fn access_latency(&self) -> Nanos {
        self.access_latency
    }

    /// Fraction of `[0, now]` the channels spent transferring data.
    pub fn utilisation(&self, now: Nanos) -> f64 {
        if now == Nanos::ZERO {
            return 0.0;
        }
        (self.busy_time.as_nanos() as f64 / now.as_nanos() as f64).min(1.0)
    }

    /// Traffic statistics.
    pub fn stats(&self) -> &HostDramStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_access_pays_latency() {
        let mut dram = HostDram::new(&HostDramConfig::default());
        assert_eq!(dram.access(Nanos::ZERO), Nanos::new(70));
        assert_eq!(dram.access_latency(), Nanos::new(70));
        assert_eq!(dram.stats().accesses, 1);
        assert_eq!(dram.stats().bytes, 64);
    }

    #[test]
    fn idle_accesses_do_not_queue() {
        let mut dram = HostDram::new(&HostDramConfig::default());
        let a = dram.access(Nanos::ZERO);
        let b = dram.access(Nanos::from_micros(10));
        assert_eq!(b - Nanos::from_micros(10), a - Nanos::ZERO);
    }

    #[test]
    fn saturating_bandwidth_queues_requests() {
        let mut cfg = HostDramConfig::default();
        cfg.timing.channel_bandwidth_bps = 1 << 20; // 1 MiB/s: trivially saturated
        cfg.timing.channels = 1;
        let mut dram = HostDram::new(&cfg);
        let a = dram.transfer(Nanos::ZERO, 4096);
        let b = dram.transfer(Nanos::ZERO, 4096);
        assert!(b > a);
        assert!(dram.utilisation(b) > 0.5);
    }

    #[test]
    fn utilisation_zero_at_start() {
        let dram = HostDram::new(&HostDramConfig::default());
        assert_eq!(dram.utilisation(Nanos::ZERO), 0.0);
    }
}
