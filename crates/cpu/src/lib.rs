//! Host CPU substrate: cache hierarchy, host DRAM and core timing model.
//!
//! The SkyByte paper evaluates with MacSim, a cycle-accurate multi-core
//! simulator. Its conclusions, however, are driven by off-chip memory
//! behaviour: Figure 4 shows that the studied workloads spend 62.9–99.8 % of
//! their cycles bounded by memory even on host DRAM. This crate therefore
//! provides a *memory-level-parallelism (MLP) limited* core model instead of
//! a full pipeline model:
//!
//! * [`CacheHierarchy`] — per-core L1/L2 and a shared LLC with MSHRs
//!   (Table II sizes), filtering which accesses go off-chip;
//! * [`HostDram`] — DDR5 latency/bandwidth model for accesses that stay in
//!   host memory (and for promoted pages);
//! * [`CoreTimingModel`] — converts instruction counts to time and bounds how
//!   much off-chip latency the out-of-order window can hide;
//! * [`Boundedness`] — the memory- vs compute-bounded cycle accounting used
//!   by Figures 4 and 10.
//!
//! # Example
//!
//! ```
//! use skybyte_cpu::{CoreTimingModel, HostDram};
//! use skybyte_types::prelude::*;
//!
//! let cfg = CpuConfig::default();
//! let core = CoreTimingModel::new(&cfg);
//! // 1000 instructions at IPC 2 and 4 GHz = 125 ns.
//! assert_eq!(core.compute_time(1000), Nanos::new(125));
//! // The 256-entry ROB hides only ~32 ns of a 3 µs flash access.
//! assert!(core.effective_stall(Nanos::from_micros(3)) > Nanos::from_micros(2));
//!
//! let mut dram = HostDram::new(&HostDramConfig::default());
//! let done = dram.access(Nanos::ZERO);
//! assert_eq!(done, Nanos::new(70));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod core_model;
mod dram;
mod hierarchy;

pub use core_model::{Boundedness, CoreTimingModel};
pub use dram::{HostDram, HostDramStats};
pub use hierarchy::{CacheHierarchy, CacheLevel, HitLevel};
