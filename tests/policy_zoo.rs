//! The pluggable policy layer, exercised end to end:
//!
//! 1. the default `PolicyConfig` must reproduce the pre-redesign simulator
//!    bit for bit (the golden corpus pins the same equivalence against
//!    recorded traces; this pins it against the live generators);
//! 2. every contender in the zoo — eviction × hotness, the bypass-scan
//!    admission policy, the fair-share tenant scheduler, every migration
//!    trigger — must keep the cross-layer conservation audit clean;
//! 3. policy choices must partition the runner's memo table: off-default
//!    overrides change the request fingerprint, defaults do not;
//! 4. the controller must expose the hotness tracker's footprint
//!    (`tracked_pages`), and the bounded trackers must actually bound it;
//! 5. a proptest sweep keeps random policy points conserving off the grid
//!    of the named experiments.

use skybyte::sim::runner::RunRequest;
use skybyte::sim::{ExperimentScale, SimResult, Simulation};
use skybyte::types::{
    apply_policy_name, AdmissionPolicyKind, EvictionPolicyKind, HotnessPolicyKind,
    MigrationPolicyKind, PolicyConfig, PolicyOverride, SimConfig, TenantSchedKind, VariantKind,
};
use skybyte::workloads::WorkloadKind;

fn tiny() -> ExperimentScale {
    ExperimentScale::tiny().with_accesses_per_thread(200)
}

/// Runs `SkyByte-Full` on `workload` at tiny scale with `policy`.
fn run_with_policy(policy: PolicyConfig, workload: WorkloadKind) -> SimResult {
    let scale = tiny();
    let mut cfg = scale.apply(SimConfig::default().with_variant(VariantKind::SkyByteFull));
    cfg.policy = policy;
    Simulation::with_config(cfg, workload, &scale).run()
}

#[test]
fn explicit_defaults_match_an_untouched_config_bit_for_bit() {
    // Spelling out the default policy in full must be indistinguishable from
    // never mentioning policies at all — for every design variant, since the
    // seams sit at different depths of the stack.
    let scale = tiny();
    for variant in VariantKind::ALL {
        let cfg = scale.apply(SimConfig::default().with_variant(variant));
        let mut explicit_cfg = cfg.clone();
        explicit_cfg.policy = PolicyConfig {
            eviction: EvictionPolicyKind::PseudoLru,
            admission: AdmissionPolicyKind::AdmitAll,
            hotness: HotnessPolicyKind::Threshold,
            tenant_sched: TenantSchedKind::Passthrough,
        };
        let untouched = Simulation::with_config(cfg, WorkloadKind::Ycsb, &scale).run();
        let explicit = Simulation::with_config(explicit_cfg, WorkloadKind::Ycsb, &scale).run();
        assert_eq!(
            untouched, explicit,
            "{variant}: default policy must be inert"
        );
        assert!(untouched.policy.is_default());
    }
}

#[test]
fn every_eviction_and_hotness_contender_keeps_the_audit_clean() {
    for eviction in EvictionPolicyKind::ALL {
        for hotness in HotnessPolicyKind::ALL {
            let policy = PolicyConfig {
                eviction,
                hotness,
                ..PolicyConfig::default()
            };
            let scale = tiny();
            let mut cfg = scale.apply(SimConfig::default().with_variant(VariantKind::SkyByteFull));
            cfg.policy = policy;
            let (result, report) = Simulation::with_config(cfg, WorkloadKind::Tpcc, &scale).audit();
            report.assert_clean(&format!("{eviction}/{hotness}"));
            assert!(!result.truncated);
            // The chosen policy must be visible in the result so audits and
            // memoization stay attributable per contender.
            assert_eq!(result.policy.eviction, eviction);
            assert_eq!(result.policy.hotness, hotness);
        }
    }
}

#[test]
fn admission_bypass_is_audit_clean_and_visible_in_the_stats() {
    let policy = PolicyConfig {
        admission: AdmissionPolicyKind::BypassScan,
        ..PolicyConfig::default()
    };
    let scale = tiny();
    let mut cfg = scale.apply(SimConfig::default().with_variant(VariantKind::SkyByteFull));
    cfg.policy = policy;
    let (result, report) = Simulation::with_config(cfg, WorkloadKind::Ycsb, &scale).audit();
    report.assert_clean("bypass-scan");
    assert_eq!(result.policy.admission, AdmissionPolicyKind::BypassScan);
}

#[test]
fn every_migration_trigger_keeps_the_audit_clean() {
    let scale = tiny();
    for policy in MigrationPolicyKind::ALL {
        let mut cfg = scale.apply(SimConfig::default().with_variant(VariantKind::SkyByteFull));
        cfg.migration.policy = policy;
        let (result, report) = Simulation::with_config(cfg, WorkloadKind::Tpcc, &scale).audit();
        report.assert_clean(&format!("migration {policy}"));
        assert!(!result.truncated);
        if policy == MigrationPolicyKind::Disabled {
            assert_eq!(result.pages_promoted, 0);
        }
    }
}

#[test]
fn fair_share_tenant_scheduling_conserves_and_serves_every_tenant() {
    let scale = tiny();
    let mut sim = Simulation::build_multi(
        VariantKind::SkyByteFull,
        &[(WorkloadKind::Ycsb, 2), (WorkloadKind::Tpcc, 2)],
        &scale,
    );
    sim.config_mut().policy.tenant_sched = TenantSchedKind::FairShare;
    let (result, report) = sim.audit();
    report.assert_clean("fair-share on ycsb+tpcc");
    assert_eq!(result.policy.tenant_sched, TenantSchedKind::FairShare);
    assert_eq!(result.per_tenant.len(), 2);
    // Work conserving: throttling preference must never starve a tenant.
    for t in &result.per_tenant {
        assert!(
            t.accesses() > 0,
            "tenant {} starved under fair-share",
            t.tenant
        );
    }
}

#[test]
fn off_default_policies_partition_the_memo_table() {
    let scale = tiny();
    let base = RunRequest::build(VariantKind::SkyByteFull, WorkloadKind::Ycsb, &scale);
    for name in PolicyOverride::all_names() {
        let mut sim = base.simulation().clone();
        apply_policy_name(sim.config_mut(), &name).unwrap();
        let changed = sim.config() != base.simulation().config();
        let req = RunRequest::from_simulation(sim);
        assert_eq!(
            req.fingerprint() != base.fingerprint(),
            changed,
            "policy '{name}': fingerprint must change iff the config does"
        );
    }
}

#[test]
fn hotness_trackers_expose_a_bounded_footprint() {
    for hotness in HotnessPolicyKind::ALL {
        let policy = PolicyConfig {
            hotness,
            ..PolicyConfig::default()
        };
        let result = run_with_policy(policy, WorkloadKind::Tpcc);
        let tracked = result
            .layers
            .ssd
            .tracked_pages
            .unwrap_or_else(|| panic!("{hotness}: tracked_pages gauge missing"));
        // Every tracker's state must stay bounded by the pages it ever saw;
        // the windowed tracker additionally bounds itself by its window.
        assert!(
            tracked <= result.ssd_accesses,
            "{hotness}: {tracked} tracked pages from {} accesses",
            result.ssd_accesses
        );
        if hotness == HotnessPolicyKind::TopK {
            assert!(tracked <= 1024, "topk must stay within its window");
        }
    }
}

mod proptest_sweep {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        /// Random policy points conserve: any eviction × admission × hotness
        /// × tenant-scheduler × migration combination (folded into one
        /// mixed-radix index), across variants, workloads and thread counts.
        #[test]
        fn random_policy_points_conserve(
            combo in 0usize..(EvictionPolicyKind::ALL.len()
                * AdmissionPolicyKind::ALL.len()
                * HotnessPolicyKind::ALL.len()
                * TenantSchedKind::ALL.len()
                * MigrationPolicyKind::ALL.len()),
            variant_idx in 0usize..VariantKind::ALL.len(),
            workload_idx in 0usize..WorkloadKind::ALL.len(),
            threads in 1u32..10,
            seed in 0u64..1_000,
        ) {
            let mut scale = tiny();
            scale.seed = seed;
            let variant = VariantKind::ALL[variant_idx];
            let workload = WorkloadKind::ALL[workload_idx];
            let mut cfg = scale
                .apply(SimConfig::default().with_variant(variant))
                .with_threads(threads);
            let mut rest = combo;
            let mut digit = |radix: usize| {
                let d = rest % radix;
                rest /= radix;
                d
            };
            cfg.policy = PolicyConfig {
                eviction: EvictionPolicyKind::ALL[digit(EvictionPolicyKind::ALL.len())],
                admission: AdmissionPolicyKind::ALL[digit(AdmissionPolicyKind::ALL.len())],
                hotness: HotnessPolicyKind::ALL[digit(HotnessPolicyKind::ALL.len())],
                tenant_sched: TenantSchedKind::ALL[digit(TenantSchedKind::ALL.len())],
            };
            cfg.migration.policy = MigrationPolicyKind::ALL[digit(MigrationPolicyKind::ALL.len())];
            let policy = cfg.policy;
            let sim = Simulation::with_config(cfg, workload, &scale);
            let (result, report) = sim.audit();
            prop_assert!(
                report.is_clean(),
                "{variant} on {workload:?} with {policy:?} (threads {threads}, seed {seed}):\n{report}"
            );
            prop_assert_eq!(result.policy, policy);
        }
    }
}
