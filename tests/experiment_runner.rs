//! Integration tests of the parallel, memoizing experiment runner.
//!
//! The runner must reproduce the sequential experiment tables bit-for-bit
//! (same rows, same values) regardless of its worker-pool size, memoization
//! must eliminate duplicate simulations — in particular the Base-CSSD
//! baselines shared between figures — and no tiny-scale experiment may hit
//! the engine's step-limit safety valve.

use skybyte_sim::experiments;
use skybyte_sim::runner::{RunRequest, Runner};
use skybyte_sim::{ExperimentScale, Simulation};
use skybyte_types::VariantKind;
use skybyte_workloads::WorkloadKind;

fn tiny() -> ExperimentScale {
    ExperimentScale::tiny().with_accesses_per_thread(300)
}

#[test]
fn parallel_runner_reproduces_sequential_tables_exactly() {
    let scale = tiny();
    let sequential = Runner::new(1);
    let parallel = Runner::new(4);

    let fig14_seq = experiments::fig14_main_ablation(&sequential, &scale);
    let fig14_par = experiments::fig14_main_ablation(&parallel, &scale);
    assert_eq!(
        fig14_seq, fig14_par,
        "figure 14 must be value-identical across --jobs 1 and --jobs 4"
    );

    // Both runners already memoized the ablation, so the figure-18 subset
    // below reuses those results; only the table assembly differs.
    let fig18_seq = experiments::fig18_write_traffic(&sequential, &scale);
    let fig18_par = experiments::fig18_write_traffic(&parallel, &scale);
    assert_eq!(
        fig18_seq, fig18_par,
        "figure 18 must be value-identical across --jobs 1 and --jobs 4"
    );
}

#[test]
fn repeated_parallel_runs_are_deterministic() {
    let scale = tiny();
    let a = experiments::fig18_write_traffic(&Runner::new(4), &scale);
    let b = experiments::fig18_write_traffic(&Runner::new(4), &scale);
    assert_eq!(a, b, "two parallel regenerations must agree exactly");
}

#[test]
fn memoization_eliminates_duplicate_baseline_runs() {
    let scale = tiny();
    let runner = Runner::new(2);

    let _ = experiments::fig14_main_ablation(&runner, &scale);
    let unique = (experiments::ALL_WORKLOADS.len() * VariantKind::MAIN_ABLATION.len()) as u64;
    assert_eq!(
        runner.runs_executed(),
        unique,
        "each (workload, variant) pair must be simulated exactly once"
    );

    // Regenerating the same figure touches the memo table only.
    let _ = experiments::fig14_main_ablation(&runner, &scale);
    assert_eq!(runner.runs_executed(), unique);

    // Figure 18's variants are a subset of the main ablation's, so on a
    // shared runner the Base-CSSD baselines (and everything else) come from
    // the memo table: zero additional simulations.
    let _ = experiments::fig18_write_traffic(&runner, &scale);
    assert_eq!(
        runner.runs_executed(),
        unique,
        "figure 18 must not re-run any simulation figure 14 already did"
    );
    assert_eq!(runner.memoized_results() as u64, unique);
}

#[test]
fn runner_results_match_direct_simulation() {
    let scale = tiny();
    let runner = Runner::new(3);
    let req = RunRequest::build(VariantKind::SkyByteFull, WorkloadKind::Ycsb, &scale);
    let via_runner = runner.run(&req);
    let direct = Simulation::build(VariantKind::SkyByteFull, WorkloadKind::Ycsb, &scale).run();
    assert_eq!(via_runner.exec_time, direct.exec_time);
    assert_eq!(via_runner.requests, direct.requests);
    assert_eq!(
        via_runner.flash_pages_programmed,
        direct.flash_pages_programmed
    );
    assert_eq!(via_runner.context_switches, direct.context_switches);
}

#[test]
fn no_tiny_scale_experiment_truncates() {
    let scale = tiny();
    let runner = Runner::new(4);
    let runs: Vec<RunRequest> = [
        VariantKind::BaseCssd,
        VariantKind::SkyByteC,
        VariantKind::SkyByteP,
        VariantKind::SkyByteW,
        VariantKind::SkyByteCP,
        VariantKind::SkyByteWP,
        VariantKind::SkyByteFull,
        VariantKind::DramOnly,
        VariantKind::SkyByteCT,
        VariantKind::SkyByteWCT,
        VariantKind::AstriFlashCxl,
    ]
    .iter()
    .flat_map(|&v| {
        [WorkloadKind::Ycsb, WorkloadKind::Tpcc]
            .into_iter()
            .map(move |w| RunRequest::build(v, w, &scale))
    })
    .collect();
    for (req, result) in runs.iter().zip(runner.run_all(&runs)) {
        assert!(
            !result.truncated,
            "{} on {:?} hit the step limit at tiny scale",
            req.simulation().config().variant,
            req.simulation().workload()
        );
    }
}
