//! Data-path integrity tests: drive the SSD controller (flash + FTL + write
//! log + data cache together) with randomized request streams and check that
//! timing and bookkeeping invariants hold across the component boundaries.

use proptest::prelude::*;
use skybyte_ssd::{ServedBy, SsdController};
use skybyte_types::{Lpa, Nanos, SimConfig, SsdGeometry, VariantKind, KIB, MIB};

fn controller(variant: VariantKind) -> SsdController {
    let mut cfg = SimConfig::default().with_variant(variant);
    cfg.ssd.geometry = SsdGeometry {
        channels: 4,
        chips_per_channel: 2,
        dies_per_chip: 1,
        planes_per_die: 1,
        blocks_per_plane: 32,
        pages_per_block: 32,
        page_size_bytes: 4096,
    };
    cfg.ssd.dram.data_cache_bytes = MIB;
    cfg.ssd.dram.write_log_bytes = 128 * KIB;
    cfg.migration.hotness_threshold = 4;
    SsdController::new(&cfg)
}

#[test]
fn controller_stats_partition_every_request() {
    let mut ssd = controller(VariantKind::SkyByteFull);
    ssd.precondition((0..256).map(Lpa::new));
    let mut now = Nanos::ZERO;
    let total = 5_000u64;
    for i in 0..total {
        let lpa = Lpa::new((i * 13) % 512);
        let cl = (i % 64) as u8;
        if i % 3 == 0 {
            ssd.handle_write(lpa, cl, now);
        } else {
            ssd.handle_read(lpa, cl, now);
        }
        now += Nanos::new(250);
    }
    let s = *ssd.stats();
    assert_eq!(s.reads + s.writes, total);
    assert_eq!(
        s.read_log_hits + s.read_cache_hits + s.read_flash_misses + s.read_zero_fills,
        s.reads,
        "read outcomes must partition the reads"
    );
    assert_eq!(s.write_log_appends, s.writes, "all writes go to the log");
    // Flash-side and FTL-side accounting agree.
    assert_eq!(
        ssd.flash_stats().pages_programmed,
        ssd.ftl_stats().flash_pages_programmed
    );
    assert!(ssd.ftl_stats().write_amplification() >= 1.0);
}

#[test]
fn base_cssd_write_misses_generate_flash_reads_but_skybyte_does_not() {
    let run = |variant| {
        let mut ssd = controller(variant);
        ssd.precondition((0..512).map(Lpa::new));
        let mut now = Nanos::ZERO;
        for i in 0..2_000u64 {
            // Writes to pages well outside any cached set.
            ssd.handle_write(Lpa::new((i * 7) % 512), (i % 64) as u8, now);
            now += Nanos::new(300);
        }
        ssd.flash_stats().pages_read
    };
    let base_reads = run(VariantKind::BaseCssd);
    let skybyte_reads = run(VariantKind::SkyByteW);
    assert!(
        base_reads > 0,
        "page-granular writes must read-modify-write from flash"
    );
    // The write log removes flash reads from the write critical path; the
    // remaining reads happen in the background during log compaction, so the
    // total is still strictly lower than the read-modify-write baseline.
    assert!(
        skybyte_reads < base_reads,
        "the write log must reduce write-path flash reads ({skybyte_reads} vs {base_reads})"
    );
}

#[test]
fn promotion_and_demotion_round_trip_through_the_controller() {
    let mut ssd = controller(VariantKind::SkyByteFull);
    ssd.precondition([Lpa::new(42)]);
    let mut now = Nanos::ZERO;
    for _ in 0..8 {
        let out = ssd.handle_read(Lpa::new(42), 3, now);
        now = out.ready_at + Nanos::new(100);
    }
    let candidate = ssd.promotion_candidate().expect("page became hot");
    assert_eq!(candidate, Lpa::new(42));
    ssd.promote_page(candidate);
    // While promoted the page is no longer cached; a later demotion programs
    // it back and restores SSD service.
    let done = ssd.demote_page(candidate, now);
    assert!(done > now);
    let read = ssd.handle_read(Lpa::new(42), 3, done);
    assert!(matches!(
        read.served_by,
        ServedBy::DataCache | ServedBy::WriteLog
    ));
}

#[test]
fn gc_keeps_serving_reads_correctly_under_heavy_overwrite() {
    // A very small device (1024 physical pages) preconditioned close to the
    // GC threshold, so overwrites quickly force garbage collection.
    let mut cfg = SimConfig::default().with_variant(VariantKind::SkyByteW);
    cfg.ssd.geometry = SsdGeometry {
        channels: 4,
        chips_per_channel: 2,
        dies_per_chip: 1,
        planes_per_die: 1,
        blocks_per_plane: 8,
        pages_per_block: 16,
        page_size_bytes: 4096,
    };
    cfg.ssd.dram.data_cache_bytes = 256 * KIB;
    cfg.ssd.dram.write_log_bytes = 64 * KIB;
    let mut ssd = SsdController::new(&cfg);
    ssd.precondition((100..800).map(Lpa::new));
    // Small working set overwritten many times forces GC in the tiny device.
    // Writes are spaced a few microseconds apart so background compactions
    // have time to complete and keep feeding programs to flash.
    let working_set = 96u64;
    ssd.precondition((0..working_set).map(Lpa::new));
    let mut now = Nanos::ZERO;
    for round in 0..60u64 {
        for p in 0..working_set {
            ssd.handle_write(Lpa::new(p), ((p + round) % 64) as u8, now);
            now += Nanos::from_micros(5);
        }
    }
    // Force all pending state out and keep reading: every page must still be
    // readable without panics and with sane timing.
    ssd.flush_all(now);
    for p in 0..working_set {
        let out = ssd.handle_read(Lpa::new(p), 0, now);
        assert!(out.ready_at >= now);
        now = out.ready_at;
    }
    assert!(ssd.ftl_stats().gc_campaigns > 0, "GC never ran");
    assert!(ssd.ftl_stats().write_amplification() >= 1.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary request streams never panic, never travel back in time, and
    /// always classify each read into exactly one service category.
    #[test]
    fn prop_controller_timing_is_monotone(ops in proptest::collection::vec((0u64..256, 0u8..64, any::<bool>(), 1u64..2_000), 1..400)) {
        let mut ssd = controller(VariantKind::SkyByteFull);
        ssd.precondition((0..128).map(Lpa::new));
        let mut now = Nanos::ZERO;
        for (page, cl, is_write, gap) in ops {
            now += Nanos::new(gap);
            let out = if is_write {
                ssd.handle_write(Lpa::new(page), cl, now)
            } else {
                ssd.handle_read(Lpa::new(page), cl, now)
            };
            prop_assert!(out.ready_at >= now, "response before request");
            prop_assert!(out.breakdown.total() <= out.ready_at.saturating_sub(now) + Nanos::from_micros(1));
            if out.delay_hint {
                prop_assert!(out.estimated_ready_at >= now);
            }
        }
        let s = *ssd.stats();
        prop_assert_eq!(
            s.read_log_hits + s.read_cache_hits + s.read_flash_misses + s.read_zero_fills,
            s.reads
        );
    }
}
