//! Integration tests of the OS-side policies through the full simulator:
//! scheduling policies (Figure 10), the context-switch trigger threshold
//! (Figure 9) and the flash-technology sensitivity (Figure 22).

use skybyte_sim::{ExperimentScale, Simulation};
use skybyte_types::{NandKind, Nanos, SchedPolicy, SimConfig, VariantKind};
use skybyte_workloads::WorkloadKind;

fn scale() -> ExperimentScale {
    ExperimentScale::tiny().with_accesses_per_thread(500)
}

fn run_with(cfg: SimConfig, workload: WorkloadKind) -> skybyte_sim::SimResult {
    Simulation::with_config(cfg, workload, &scale()).run()
}

#[test]
fn figure10_shape_scheduling_policies_perform_similarly() {
    // The paper finds RR, Random and CFS deliver similar performance because
    // the threads are all memory-bound and get similar chances to issue I/O.
    let workload = WorkloadKind::Srad;
    let mut times = Vec::new();
    for policy in [
        SchedPolicy::RoundRobin,
        SchedPolicy::Random,
        SchedPolicy::Cfs,
    ] {
        let cfg = scale()
            .apply(SimConfig::default().with_variant(VariantKind::SkyByteFull))
            .with_sched_policy(policy);
        let r = run_with(cfg, workload);
        assert!(r.context_switches > 0, "{policy}: no context switches");
        times.push(r.exec_time.as_nanos() as f64);
    }
    let min = times.iter().cloned().fold(f64::MAX, f64::min);
    let max = times.iter().cloned().fold(0.0f64, f64::max);
    assert!(
        max / min < 1.5,
        "policies should be within 50% of each other: {times:?}"
    );
}

#[test]
fn figure9_shape_raising_the_threshold_reduces_context_switches() {
    let workload = WorkloadKind::Bc;
    let mut previous_switches = u64::MAX;
    for threshold_us in [2u64, 20, 80] {
        let mut cfg = scale().apply(SimConfig::default().with_variant(VariantKind::SkyByteFull));
        cfg.cs_threshold = Nanos::from_micros(threshold_us);
        let r = run_with(cfg, workload);
        assert!(
            r.context_switches <= previous_switches,
            "context switches must not increase with the threshold \
             ({threshold_us}us: {} vs previous {previous_switches})",
            r.context_switches
        );
        previous_switches = r.context_switches;
    }
}

#[test]
fn figure9_shape_default_threshold_is_competitive() {
    // A 2 µs threshold (below tR) should never be much worse than a very
    // conservative 80 µs threshold, and usually better.
    let workload = WorkloadKind::Srad;
    let run_threshold = |us: u64| {
        let mut cfg = scale().apply(SimConfig::default().with_variant(VariantKind::SkyByteFull));
        cfg.cs_threshold = Nanos::from_micros(us);
        run_with(cfg, workload).exec_time
    };
    let fast = run_threshold(2);
    let slow = run_threshold(80);
    assert!(
        fast.as_nanos() as f64 <= slow.as_nanos() as f64 * 1.25,
        "the paper's 2us threshold should be competitive: {fast} vs {slow}"
    );
}

#[test]
fn figure22_shape_slower_flash_hurts_but_context_switching_compensates() {
    let workload = WorkloadKind::Ycsb;
    // SkyByte-WP (no context switches) degrades sharply from ULL to MLC.
    let wp = |nand: NandKind| {
        let cfg = scale().apply(
            SimConfig::default()
                .with_variant(VariantKind::SkyByteWP)
                .with_nand(nand),
        );
        run_with(cfg, workload).exec_time
    };
    let full = |nand: NandKind| {
        let cfg = scale()
            .apply(
                SimConfig::default()
                    .with_variant(VariantKind::SkyByteFull)
                    .with_nand(nand),
            )
            .with_threads(24);
        run_with(cfg, workload).exec_time
    };
    let wp_ull = wp(NandKind::Ull);
    let wp_mlc = wp(NandKind::Mlc);
    assert!(wp_mlc > wp_ull, "slower flash must slow SkyByte-WP down");

    // The relative benefit of context switching is larger on slow flash.
    let gain_ull = wp_ull.as_nanos() as f64 / full(NandKind::Ull).as_nanos() as f64;
    let gain_mlc = wp_mlc.as_nanos() as f64 / full(NandKind::Mlc).as_nanos() as f64;
    assert!(
        gain_mlc >= gain_ull * 0.9,
        "context switching should help at least as much on MLC \
         (gain ULL {gain_ull:.2}x vs MLC {gain_mlc:.2}x)"
    );
}

#[test]
fn table3_shape_flash_read_latency_includes_queueing() {
    // The average flash read latency observed by SkyByte-WP is at least tR
    // and grows with queueing (Table III reports 3.3–25.7 µs).
    let cfg = scale().apply(SimConfig::default().with_variant(VariantKind::SkyByteWP));
    let r = run_with(cfg, WorkloadKind::BfsDense);
    assert!(r.avg_flash_read_latency >= Nanos::from_micros(3));
    assert!(r.avg_flash_read_latency < Nanos::from_millis(5));
}

#[test]
fn dram_only_ignores_ssd_knobs() {
    // The ideal case must be insensitive to SSD-side configuration.
    let a = {
        let cfg = scale().apply(SimConfig::default().with_variant(VariantKind::DramOnly));
        run_with(cfg, WorkloadKind::Radix)
    };
    let b = {
        let cfg = scale().apply(
            SimConfig::default()
                .with_variant(VariantKind::DramOnly)
                .with_nand(NandKind::Mlc),
        );
        run_with(cfg, WorkloadKind::Radix)
    };
    assert_eq!(a.exec_time, b.exec_time);
    assert_eq!(a.flash_pages_programmed, 0);
    assert_eq!(b.flash_pages_programmed, 0);
}
