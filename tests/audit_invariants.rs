//! The cross-layer conservation audit, exercised three ways:
//!
//! 1. every design variant × workload pair at tiny scale must produce a
//!    clean report — any future accounting bug fails here with the violated
//!    invariant's name;
//! 2. deliberately corrupting each audited counter must fire **exactly** the
//!    matching invariant (the audit localises bugs, it does not just detect
//!    them);
//! 3. a proptest sweep over random tiny workload/config points keeps the
//!    invariant set honest off the beaten path of the named experiments.

use skybyte::sim::audit::audit;
use skybyte::sim::{ExperimentScale, SimResult, Simulation};
use skybyte::types::{Nanos, VariantKind};
use skybyte::workloads::WorkloadKind;

fn tiny() -> ExperimentScale {
    ExperimentScale::tiny().with_accesses_per_thread(200)
}

#[test]
fn every_variant_and_workload_conserves_at_tiny_scale() {
    let scale = tiny();
    for variant in VariantKind::ALL {
        for workload in WorkloadKind::ALL {
            let (result, report) = Simulation::build(variant, workload, &scale).audit();
            report.assert_clean(&format!("{variant} on {workload:?}"));
            assert!(report.checked() >= 15, "audit must cover the invariant set");
            assert!(!result.truncated);
            // The pipelined engine attributes every run, so the per-tenant
            // and CXL-port invariants are exercised on every pair too.
            assert_eq!(result.per_tenant.len(), 1);
            assert!(report.checked() >= 25, "tenant + port invariants ran");
        }
    }
}

#[test]
fn multi_tenant_colocation_conserves_for_every_variant() {
    // A ycsb + tpcc co-location (the interference experiment's shape) must
    // conserve across every design variant: the per-tenant sums close
    // against the global counters and the port agrees with the access
    // stream even under contention.
    let scale = tiny();
    for variant in VariantKind::ALL {
        let sim = Simulation::build_multi(
            variant,
            &[(WorkloadKind::Ycsb, 4), (WorkloadKind::Tpcc, 4)],
            &scale,
        );
        let (result, report) = sim.audit();
        report.assert_clean(&format!("{variant} on ycsb+tpcc"));
        assert!(!result.truncated);
        assert_eq!(result.per_tenant.len(), 2);
        assert_eq!(result.threads, 8);
        assert_eq!(result.workload, "ycsb+tpcc");
        for t in &result.per_tenant {
            assert_eq!(t.threads, 4);
            assert!(t.accesses() > 0, "{variant}: tenant {} starved", t.tenant);
        }
    }
}

#[test]
fn audit_is_clean_for_replayed_traces_too() {
    use skybyte::sim::TraceDrive;
    let dir = std::env::temp_dir().join(format!("skybyte-audit-replay-{}", std::process::id()));
    let scale = tiny();
    let sim = Simulation::build(VariantKind::SkyByteFull, WorkloadKind::Tpcc, &scale);
    let live = sim
        .clone()
        .with_drive(TraceDrive::Record { dir: dir.clone() })
        .run();
    audit(&live).assert_clean("recorded run");
    let replayed = sim
        .clone()
        .with_drive(TraceDrive::Replay { dir: dir.clone() })
        .run();
    audit(&replayed).assert_clean("replayed run");
    assert_eq!(live, replayed);
    std::fs::remove_dir_all(&dir).ok();
}

/// A base result with every subsystem active: write log (compactions),
/// promotions, context switches, GC.
fn base_result() -> SimResult {
    let r = Simulation::build(VariantKind::SkyByteFull, WorkloadKind::Tpcc, &tiny()).run();
    // The corruption tests below rely on these populations being nonempty.
    assert!(r.ssd_accesses > 0 && r.context_switches > 0);
    assert!(r.layers.write_log.is_some() && r.compactions > 0);
    assert!(r.pages_promoted > 0);
    audit(&r).assert_clean("corruption-test baseline");
    r
}

/// Corrupts `r` with `break_it` and asserts that **exactly** `expected`
/// fires, with its name in the rendered report.
fn assert_fires_exactly(r: &SimResult, expected: &str, break_it: impl FnOnce(&mut SimResult)) {
    let mut bad = r.clone();
    break_it(&mut bad);
    let report = audit(&bad);
    assert_eq!(
        report.violated_names(),
        vec![expected],
        "corrupting for '{expected}' fired {:?}",
        report.violated_names()
    );
    assert!(report.to_string().contains(expected));
}

#[test]
fn corrupting_each_counter_fires_exactly_the_matching_invariant() {
    let r = base_result();

    // The classified-request total now also feeds the per-tenant and
    // link-level laws; shift those views in lock-step so only the
    // requests-vs-squash conservation can fire.
    assert_fires_exactly(&r, "requests-conservation", |b| {
        b.requests.ssd_write += 1;
        b.per_tenant[0].requests.ssd_write += 1;
        b.layers.cxl.responses += 1;
    });
    assert_fires_exactly(&r, "amat-histogram-agreement", |b| {
        b.amat.accesses += 1;
        b.per_tenant[0].amat.accesses += 1;
    });
    assert_fires_exactly(&r, "flash-busy-bounded", |b| {
        b.flash_busy_time = b.exec_time * (b.flash_channels as u64) + Nanos::new(1);
    });
    assert_fires_exactly(&r, "compaction-time-bounded", |b| {
        b.compaction_time = b.exec_time + Nanos::new(1);
    });
    // gc_pages_relocated appears in the FTL conservation law only.
    assert_fires_exactly(&r, "ftl-page-conservation", |b| {
        b.layers.ftl.gc_pages_relocated += 1;
    });
    // Shift both program counters the flash/FTL agreement compares, keeping
    // the headline figures and the FTL's own conservation law intact.
    assert_fires_exactly(&r, "flash-ftl-program-agreement", |b| {
        b.layers.flash.pages_programmed += 1;
        b.flash_pages_programmed += 1;
    });
    assert_fires_exactly(&r, "flash-traffic-agreement", |b| b.flash_pages_read += 1);
    assert_fires_exactly(&r, "write-amplification", |b| b.write_amplification += 0.5);
    assert_fires_exactly(&r, "write-log-conservation", |b| {
        b.layers.write_log.as_mut().unwrap().entries_retired_live += 1;
    });
    assert_fires_exactly(&r, "write-log-append-agreement", |b| {
        b.layers.ssd.write_log_appends += 1;
    });
    // Bump reads and a hit bucket together: isolates the cross-layer access
    // agreement from the controller-internal read partition.
    assert_fires_exactly(&r, "ssd-access-agreement", |b| {
        b.layers.ssd.reads += 1;
        b.layers.ssd.read_zero_fills += 1;
    });
    assert_fires_exactly(&r, "read-path-partition", |b| {
        b.layers.ssd.read_zero_fills += 1;
    });
    assert_fires_exactly(&r, "squash-context-switch-agreement", |b| {
        b.context_switches += 1;
    });
    // Migration payloads cross the CXL link, so a shifted demotion counter
    // must be mirrored on the link's response count to stay isolated.
    assert_fires_exactly(&r, "migration-agreement", |b| {
        b.layers.migration.demotions += 1;
        b.layers.cxl.responses += 1;
    });
    assert_fires_exactly(&r, "migration-cadence", |b| {
        b.migration_runs = b.ssd_accesses; // far beyond one per window
    });
    assert_fires_exactly(&r, "boundedness-exec-window", |b| {
        b.boundedness.idle += b.exec_time * (b.cores as u64);
    });
    assert_fires_exactly(&r, "compaction-count-agreement", |b| b.compactions += 1);
    assert_fires_exactly(&r, "cxl-port-agreement", |b| b.layers.cxl.requests += 1);
    assert_fires_exactly(&r, "cxl-port-agreement", |b| b.layers.cxl.responses += 1);
}

#[test]
fn corrupting_tenant_counters_fires_exactly_the_matching_invariant() {
    let r = base_result();
    assert_eq!(r.per_tenant.len(), 1, "single-tenant run, one attribution");

    assert_fires_exactly(&r, "tenant-thread-partition", |b| {
        b.per_tenant[0].threads += 1;
    });
    assert_fires_exactly(&r, "tenant-request-conservation", |b| {
        b.per_tenant[0].requests.ssd_write += 1;
    });
    assert_fires_exactly(&r, "tenant-amat-conservation", |b| {
        b.per_tenant[0].amat.accesses += 1;
    });
    assert_fires_exactly(&r, "tenant-histogram-conservation", |b| {
        b.per_tenant[0].latency_hist.record(Nanos::new(100));
    });
    // A leaked squash breaks both the sum against the global counter and
    // the tenant's own squash == context-switch agreement — one invariant.
    assert_fires_exactly(&r, "tenant-squash-conservation", |b| {
        b.per_tenant[0].squashed_accesses += 1;
        b.per_tenant[0].context_switches += 1;
        b.per_tenant[0].ssd_accesses += 1;
    });
    assert_fires_exactly(&r, "tenant-instruction-conservation", |b| {
        b.per_tenant[0].instructions += 1;
    });
    assert_fires_exactly(&r, "tenant-finish-bounded", |b| {
        b.per_tenant[0].finish_time = b.exec_time + Nanos::new(1);
    });
}

#[test]
fn corruption_reports_carry_the_concrete_numbers() {
    let r = base_result();
    let mut bad = r.clone();
    bad.requests.ssd_write += 7;
    let report = audit(&bad);
    let rendered = report.to_string();
    assert!(
        rendered.contains("ssd_accesses"),
        "detail must name the counters: {rendered}"
    );
}

mod proptest_sweep {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// The full invariant set holds across random tiny workload points:
        /// any variant, any workload, varying thread counts, budgets and
        /// seeds (including single-thread and oversubscribed shapes).
        #[test]
        fn random_tiny_workloads_conserve(
            variant_idx in 0usize..VariantKind::ALL.len(),
            workload_idx in 0usize..WorkloadKind::ALL.len(),
            threads in 1u32..20,
            accesses in 40u64..220,
            seed in 0u64..1_000,
        ) {
            let variant = VariantKind::ALL[variant_idx];
            let workload = WorkloadKind::ALL[workload_idx];
            let mut scale = ExperimentScale::tiny().with_accesses_per_thread(accesses);
            scale.seed = seed;
            let cfg = scale
                .apply(skybyte::types::SimConfig::default().with_variant(variant))
                .with_threads(threads);
            let sim = Simulation::with_config(cfg, workload, &scale);
            let report = audit(&sim.run());
            prop_assert!(
                report.is_clean(),
                "{variant} on {workload:?} (threads {threads}, accesses {accesses}, seed {seed}):\n{report}"
            );
        }
    }
}
