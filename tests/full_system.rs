//! End-to-end integration tests spanning every crate in the workspace.
//!
//! These check the *shape* of the paper's headline results at a tiny scale:
//! who wins, in which direction the traffic moves, and that the bookkeeping
//! of the different layers (host model, CXL port, SSD controller, FTL, flash
//! array) stays mutually consistent.

use skybyte_sim::metrics::geometric_mean;
use skybyte_sim::{ExperimentScale, Simulation};
use skybyte_types::{Nanos, VariantKind};
use skybyte_workloads::WorkloadKind;

fn scale() -> ExperimentScale {
    ExperimentScale::tiny().with_accesses_per_thread(600)
}

fn run(variant: VariantKind, workload: WorkloadKind) -> skybyte_sim::SimResult {
    Simulation::build(variant, workload, &scale()).run()
}

#[test]
fn all_variants_process_the_same_amount_of_work() {
    // The ablation compares designs on identical work: every variant must
    // classify exactly `accesses_per_thread * cores` memory accesses, no
    // matter how many threads the work is divided among.
    let expected = scale().accesses_per_thread * 8;
    for variant in [
        VariantKind::BaseCssd,
        VariantKind::SkyByteW,
        VariantKind::SkyByteCP,
        VariantKind::SkyByteFull,
        VariantKind::DramOnly,
        VariantKind::AstriFlashCxl,
    ] {
        let r = run(variant, WorkloadKind::Srad);
        assert_eq!(
            r.total_accesses(),
            expected,
            "{variant}: classified {} accesses, expected {expected}",
            r.total_accesses()
        );
    }
}

#[test]
fn figure2_shape_cxl_ssd_is_much_slower_than_dram() {
    for workload in [WorkloadKind::Bc, WorkloadKind::Tpcc] {
        let dram = run(VariantKind::DramOnly, workload);
        let cssd = run(VariantKind::BaseCssd, workload);
        let slowdown = cssd.exec_time.as_nanos() as f64 / dram.exec_time.as_nanos() as f64;
        assert!(
            slowdown > 1.5,
            "{workload}: expected a >1.5x slowdown on the baseline CXL-SSD, got {slowdown:.2}"
        );
    }
}

#[test]
fn figure14_shape_full_design_recovers_most_of_the_gap() {
    let workloads = [WorkloadKind::Bc, WorkloadKind::Ycsb, WorkloadKind::Srad];
    let mut speedups = Vec::new();
    for w in workloads {
        let base = run(VariantKind::BaseCssd, w);
        let full = run(VariantKind::SkyByteFull, w);
        let dram = run(VariantKind::DramOnly, w);
        assert!(
            full.exec_time < base.exec_time,
            "{w}: SkyByte-Full must outperform Base-CSSD"
        );
        assert!(
            dram.exec_time <= full.exec_time,
            "{w}: DRAM-Only is a lower bound"
        );
        speedups.push(base.exec_time.as_nanos() as f64 / full.exec_time.as_nanos() as f64);
    }
    let geo = geometric_mean(speedups.iter().copied());
    assert!(
        geo > 1.3,
        "geometric-mean speedup of SkyByte-Full over Base-CSSD too small: {geo:.2}"
    );
}

#[test]
fn figure18_shape_write_log_cuts_flash_write_traffic() {
    for workload in [WorkloadKind::Tpcc, WorkloadKind::Dlrm] {
        let base = run(VariantKind::BaseCssd, workload);
        let full = run(VariantKind::SkyByteFull, workload);
        assert!(
            (full.flash_pages_programmed as f64) < 0.9 * base.flash_pages_programmed.max(1) as f64,
            "{workload}: expected a clear write-traffic reduction ({} vs {})",
            full.flash_pages_programmed,
            base.flash_pages_programmed
        );
    }
}

#[test]
fn figure17_shape_amat_improves_with_each_mechanism() {
    let workload = WorkloadKind::Ycsb;
    let base = run(VariantKind::BaseCssd, workload);
    let wp = run(VariantKind::SkyByteWP, workload);
    let dram = run(VariantKind::DramOnly, workload);
    assert!(wp.amat.amat() < base.amat.amat());
    assert!(dram.amat.amat() < wp.amat.amat());
    // The flash component dominates the baseline AMAT (Figure 17b).
    assert!(base.amat.fractions().fraction("flash") > 0.5);
}

#[test]
fn accounting_is_consistent_across_layers() {
    let r = run(VariantKind::SkyByteFull, WorkloadKind::Radix);
    // Request classification covers every access exactly once.
    assert_eq!(
        r.requests.host + r.requests.ssd_read_hit + r.requests.ssd_read_miss + r.requests.ssd_write,
        r.total_accesses()
    );
    // AMAT only counts retired accesses: never more than the classified ones.
    assert!(r.amat.accesses <= r.total_accesses());
    // Latency histogram matches the AMAT population.
    assert_eq!(r.latency_hist.count(), r.amat.accesses);
    // Write amplification can never be below 1.
    assert!(r.write_amplification >= 1.0);
    // Boundedness accounts some busy time on every run.
    assert!(r.boundedness.total() > Nanos::ZERO);
    // Bandwidth utilisation is a fraction.
    let util = r.ssd_bandwidth_utilisation();
    assert!((0.0..=1.0).contains(&util));
}

#[test]
fn promotion_budget_is_respected_end_to_end() {
    let tight = ExperimentScale::tiny()
        .with_accesses_per_thread(500)
        .with_host_dram(8 * 4096); // only 8 promoted pages allowed
    let r = Simulation::build(VariantKind::SkyByteCP, WorkloadKind::Ycsb, &tight).run();
    assert!(r.pages_promoted > 0, "promotion should still happen");
    // Promotions beyond the budget force demotions.
    assert!(
        r.pages_promoted <= r.pages_demoted + 8,
        "resident promoted pages exceed the budget: promoted {} demoted {}",
        r.pages_promoted,
        r.pages_demoted
    );
}

#[test]
fn context_switching_improves_ssd_bandwidth_utilisation() {
    // §VI-C: more threads + coordinated context switches keep more flash
    // requests in flight than a blocked 8-thread baseline.
    let workload = WorkloadKind::BfsDense;
    let wp = run(VariantKind::SkyByteWP, workload);
    let full = run(VariantKind::SkyByteFull, workload);
    assert!(full.context_switches > 0);
    assert!(
        full.ssd_bandwidth_utilisation() >= wp.ssd_bandwidth_utilisation() * 0.9,
        "context switching should not reduce SSD bandwidth utilisation ({:.3} vs {:.3})",
        full.ssd_bandwidth_utilisation(),
        wp.ssd_bandwidth_utilisation()
    );
}

#[test]
fn results_serialise_for_the_experiment_log() {
    let r = run(VariantKind::SkyByteW, WorkloadKind::Bc);
    let json = serde_json::to_string_pretty(&r).expect("serialise");
    assert!(json.contains("\"workload\": \"bc\""));
    let back: skybyte_sim::SimResult = serde_json::from_str(&json).expect("deserialise");
    assert_eq!(back.exec_time, r.exec_time);
}
