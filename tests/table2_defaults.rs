//! Smoke test pinning `SimConfig::default()` to the paper's Table II
//! parameters, so an accidental change to the published configuration fails
//! fast instead of silently skewing every experiment.

use skybyte_types::{Nanos, SchedPolicy, SimConfig, GIB, MIB};

#[test]
fn default_config_matches_table_2() {
    let cfg = SimConfig::default();

    // Host CPU: 8 out-of-order cores at 4 GHz with a 256-entry ROB.
    assert_eq!(cfg.cpu.cores, 8);
    assert_eq!(cfg.cpu.freq.as_ghz(), 4.0);
    assert_eq!(cfg.cpu.rob_entries, 256);

    // Host memory: DDR5 at ~70 ns loaded latency, 2 GiB promotion budget.
    assert_eq!(cfg.host_dram.timing.access_latency, Nanos::new(70));
    assert_eq!(cfg.host_dram.promotion_capacity_bytes, 2 * GIB);

    // Data TLB: 1536 entries, 30 ns page-walk penalty per miss.
    assert_eq!(cfg.cpu.tlb.entries, 1536);
    assert_eq!(cfg.cpu.tlb.miss_latency, Nanos::new(30));

    // CXL-SSD interface: 40 ns protocol latency per crossing.
    assert_eq!(cfg.ssd.cxl_protocol_latency, Nanos::new(40));

    // Flash: ULL (Z-NAND) timing — tR 3 µs, tProg 100 µs, tBERS 1 ms.
    assert_eq!(cfg.ssd.flash.read_latency, Nanos::from_micros(3));
    assert_eq!(cfg.ssd.flash.program_latency, Nanos::from_micros(100));
    assert_eq!(cfg.ssd.flash.erase_latency, Nanos::from_micros(1000));

    // Geometry: 16 channels × 8 chips × 8 dies × 128 blocks × 256 pages
    // × 4 KiB = 128 GiB raw capacity.
    assert_eq!(cfg.ssd.geometry.channels, 16);
    assert_eq!(cfg.ssd.geometry.page_size_bytes, 4096);
    assert_eq!(cfg.ssd.geometry.total_bytes(), 128 * GIB);

    // SSD-internal DRAM: 512 MiB total, split 448 MiB data cache + 64 MiB
    // write log; index latencies from the FPGA prototype measurements (§V).
    assert_eq!(cfg.ssd.dram.data_cache_bytes, 448 * MIB);
    assert_eq!(cfg.ssd.dram.write_log_bytes, 64 * MIB);
    assert_eq!(cfg.ssd.dram.total_bytes(), 512 * MIB);
    assert_eq!(cfg.ssd.dram.write_log_index_latency, Nanos::new(72));
    assert_eq!(cfg.ssd.dram.data_cache_index_latency, Nanos::new(49));

    // OS: CFS scheduling, 2 µs context-switch trigger threshold and 2 µs
    // switch overhead; GC starts at 80 % valid pages.
    assert_eq!(cfg.sched_policy, SchedPolicy::Cfs);
    assert_eq!(cfg.cs_threshold, Nanos::from_micros(2));
    assert_eq!(cfg.context_switch_overhead, Nanos::from_micros(2));
    assert_eq!(cfg.ssd.gc_threshold, 0.80);

    // The default must always be a valid configuration.
    cfg.validate().expect("Table II defaults must validate");
}
