//! Integration tests of the trace record/replay/compose subsystem.
//!
//! The keystone property: a recorded-then-replayed trace produces
//! **bit-identical** [`SimResult`]s to the live generator run that recorded
//! it — which is what makes traces a trustworthy currency for every future
//! workload (real PIN imports, multi-tenant mixes, fuzzed streams).

use skybyte::sim::{ExperimentScale, Simulation, TraceDrive};
use skybyte::trace::{Mix, TraceFileSource, TraceReader, TraceSource, TraceStats};
use skybyte::types::VariantKind;
use skybyte::workloads::WorkloadKind;
use std::path::PathBuf;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("skybyte-trace-replay-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn tiny() -> ExperimentScale {
    ExperimentScale::tiny().with_accesses_per_thread(200)
}

#[test]
fn record_then_replay_is_bit_identical_across_workloads_and_variants() {
    let dir = scratch_dir("identity");
    let scale = tiny();
    // Two workloads with very different stream shapes, and both a squash
    // happy variant (context switches re-issue accesses) and the plain
    // baseline — replay must survive push-back and oversubscription.
    for (workload, variant) in [
        (WorkloadKind::Ycsb, VariantKind::SkyByteFull),
        (WorkloadKind::Srad, VariantKind::BaseCssd),
    ] {
        let sim = Simulation::build(variant, workload, &scale);
        let live = sim
            .clone()
            .with_drive(TraceDrive::Record { dir: dir.clone() })
            .run();
        let replayed = sim
            .clone()
            .with_drive(TraceDrive::Replay { dir: dir.clone() })
            .run();
        assert_eq!(
            live, replayed,
            "{workload:?}/{variant:?}: replay must be bit-identical to the live run"
        );
        // The tee is transparent: recording did not change the result.
        assert_eq!(
            sim.run(),
            live,
            "{workload:?}/{variant:?}: tee perturbed the run"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recorded_traces_describe_what_the_engine_consumed() {
    let dir = scratch_dir("stats");
    let scale = tiny();
    let sim = Simulation::build(VariantKind::BaseCssd, WorkloadKind::Tpcc, &scale);
    let _ = sim
        .clone()
        .with_drive(TraceDrive::Record { dir: dir.clone() })
        .run();
    let path = dir.join(sim.trace_file_name());
    let (header, stats) = TraceStats::scan_file(&path).unwrap();
    assert_eq!(header.threads, sim.config().threads);
    assert_eq!(
        stats.records,
        sim.per_thread_budget() * sim.config().threads as u64,
        "the trace must hold exactly the consumed work units"
    );
    // Table I shape survives recording: tpcc is write-heavy (0.36).
    assert!((stats.write_ratio() - 0.36).abs() < 0.05);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mix_of_two_traces_conserves_total_access_count() {
    let dir = scratch_dir("mix");
    let scale = tiny();
    let mut totals = 0u64;
    let mut paths = Vec::new();
    for workload in [WorkloadKind::Ycsb, WorkloadKind::Bc] {
        let sim = Simulation::build(VariantKind::BaseCssd, workload, &scale);
        let _ = sim
            .clone()
            .with_drive(TraceDrive::Record { dir: dir.clone() })
            .run();
        let path = dir.join(sim.trace_file_name());
        let (_, stats) = TraceStats::scan_file(&path).unwrap();
        totals += stats.records;
        paths.push(path);
    }
    let a = TraceFileSource::open(&paths[0]).unwrap();
    let b = TraceFileSource::open(&paths[1]).unwrap();
    let threads = a.threads().max(b.threads());
    let mut mix = Mix::new(vec![(Box::new(a) as _, 3), (Box::new(b) as _, 1)]);
    let mut stats = TraceStats::default();
    for t in 0..threads {
        while let Some(record) = mix.next_record(t).unwrap() {
            stats.add(t, &record);
        }
    }
    assert_eq!(
        stats.records, totals,
        "a mix must emit every record of every input exactly once"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_headers_carry_provenance() {
    let dir = scratch_dir("provenance");
    let scale = tiny();
    let sim = Simulation::build(VariantKind::DramOnly, WorkloadKind::Dlrm, &scale);
    let _ = sim
        .clone()
        .with_drive(TraceDrive::Record { dir: dir.clone() })
        .run();
    let reader = TraceReader::open(&dir.join(sim.trace_file_name())).unwrap();
    let header = reader.header();
    assert!(header.source.contains("dlrm"));
    assert_eq!(header.seed, scale.seed);
    assert_eq!(
        header.footprint_bytes,
        scale.workload_spec(WorkloadKind::Dlrm).footprint_bytes
    );
    std::fs::remove_dir_all(&dir).ok();
}
