//! Integration tests of the simulated-time telemetry subsystem.
//!
//! The keystone property is that telemetry is **observe-only**: enabling the
//! periodic sampler and the timeline recorder must leave every simulation
//! result bit-identical to the plain run, and the exported artifacts must be
//! byte-identical regardless of worker-thread count or whether the run was
//! live or replayed from a trace. On top of that, the final cumulative
//! sample must tie exactly to the result's layer counters — the
//! `telemetry-final-agreement` audit invariant.

use skybyte::sim::audit::{audit, audit_with_telemetry};
use skybyte::sim::runner::{RunRequest, Runner};
use skybyte::sim::{chrome_trace_json, metrics_csv, ExperimentScale, Simulation, TraceDrive};
use skybyte::types::{Nanos, TelemetryConfig, VariantKind};
use skybyte::workloads::WorkloadKind;

fn tiny() -> ExperimentScale {
    ExperimentScale::tiny().with_accesses_per_thread(200)
}

fn telemetry_on() -> TelemetryConfig {
    TelemetryConfig {
        enabled: true,
        sample_interval: Nanos::from_micros(10),
        timeline: true,
    }
}

#[test]
fn telemetry_is_observe_only() {
    let scale = tiny();
    for (workload, variant) in [
        (WorkloadKind::Ycsb, VariantKind::SkyByteFull),
        (WorkloadKind::Srad, VariantKind::BaseCssd),
        (WorkloadKind::Tpcc, VariantKind::SkyByteC),
    ] {
        let plain = Simulation::build(variant, workload, &scale).run();
        let mut sim = Simulation::build(variant, workload, &scale);
        sim.config_mut().telemetry = telemetry_on();
        let (observed, output) = sim.try_run_with_telemetry().expect("synthetic run");
        assert_eq!(
            plain, observed,
            "{variant} on {workload:?}: telemetry perturbed the simulation"
        );
        let output = output.expect("telemetry was enabled");
        assert!(
            !output.metrics.samples.is_empty(),
            "the sampler must have fired at least the final cumulative sample"
        );
        // Every periodic row lands exactly on the sampling grid; the final
        // cumulative row is taken at `exec_time` and closes the series.
        let interval = Nanos::from_micros(10).as_nanos();
        let (final_row, periodic) = output.metrics.samples.split_last().unwrap();
        for s in periodic {
            assert_eq!(
                s.time.as_nanos() % interval,
                0,
                "periodic samples must land on the cadence grid"
            );
            assert!(s.time <= plain.exec_time);
        }
        assert_eq!(final_row.time, plain.exec_time);
        assert_eq!(*final_row, output.final_sample);
        assert!(
            !output.timeline.events().is_empty(),
            "a run with context switches and flash traffic must leave spans"
        );
    }
}

#[test]
fn exports_are_byte_identical_across_job_counts() {
    let scale = tiny();
    let reqs: Vec<RunRequest> = [
        (VariantKind::BaseCssd, WorkloadKind::Ycsb),
        (VariantKind::SkyByteFull, WorkloadKind::Ycsb),
        (VariantKind::BaseCssd, WorkloadKind::Bc),
        (VariantKind::SkyByteFull, WorkloadKind::Bc),
    ]
    .into_iter()
    .map(|(v, w)| RunRequest::build(v, w, &scale))
    .collect();
    let render = |jobs: usize| {
        let runner = Runner::new(jobs).with_telemetry(telemetry_on());
        let results = runner.run_all(&reqs);
        let outputs = runner.telemetry_outputs();
        assert_eq!(outputs.len(), reqs.len());
        let csv = metrics_csv(outputs.iter().map(|(l, o)| (l.as_str(), &o.metrics)));
        let json = chrome_trace_json(outputs.iter().map(|(l, o)| (l.as_str(), &o.timeline)));
        (results, csv, json)
    };
    let (seq_results, seq_csv, seq_json) = render(1);
    let (par_results, par_csv, par_json) = render(4);
    for (s, p) in seq_results.iter().zip(&par_results) {
        assert_eq!(**s, **p);
    }
    assert_eq!(seq_csv, par_csv, "metrics CSV must not depend on --jobs");
    assert_eq!(
        seq_json, par_json,
        "timeline JSON must not depend on --jobs"
    );
    // And the telemetry runner's results match a plain runner's bit-exactly.
    let plain = Runner::new(2).run_all(&reqs);
    for (t, p) in seq_results.iter().zip(&plain) {
        assert_eq!(**t, **p, "telemetry perturbed a runner execution");
    }
}

#[test]
fn record_then_replay_reproduces_telemetry_exactly() {
    let dir = std::env::temp_dir().join(format!("skybyte-telemetry-replay-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let scale = tiny();
    let mut sim = Simulation::build(VariantKind::SkyByteFull, WorkloadKind::Ycsb, &scale);
    sim.config_mut().telemetry = telemetry_on();
    let (live, live_tel) = sim
        .clone()
        .with_drive(TraceDrive::Record { dir: dir.clone() })
        .try_run_with_telemetry()
        .expect("recording run");
    let (replayed, replay_tel) = sim
        .clone()
        .with_drive(TraceDrive::Replay { dir: dir.clone() })
        .try_run_with_telemetry()
        .expect("replay run");
    assert_eq!(live, replayed);
    assert_eq!(
        live_tel, replay_tel,
        "replay must reproduce the recorded run's telemetry bit-exactly"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn final_sample_ties_to_the_layer_counters() {
    let scale = tiny();
    let mut sim = Simulation::build(VariantKind::SkyByteFull, WorkloadKind::Ycsb, &scale);
    sim.config_mut().telemetry = telemetry_on();
    let (result, output) = sim.try_run_with_telemetry().expect("synthetic run");
    let output = output.expect("telemetry was enabled");

    // The invariant is only emitted when telemetry actually ran…
    let plain = audit(&result);
    assert!(!plain.checked_names().contains(&"telemetry-final-agreement"));
    let absent = audit_with_telemetry(&result, None);
    assert_eq!(plain.checked(), absent.checked());

    // …and a real run's final sample agrees with the layers snapshot.
    let report = audit_with_telemetry(&result, Some(&output.final_sample));
    assert!(report
        .checked_names()
        .contains(&"telemetry-final-agreement"));
    report.assert_clean("SkyByte-Full on ycsb with telemetry");

    // Corrupting the sample fires exactly the new invariant.
    let mut bad = output.final_sample.clone();
    bad.flash_pages_programmed += 1;
    let report = audit_with_telemetry(&result, Some(&bad));
    assert_eq!(report.violated_names(), vec!["telemetry-final-agreement"]);
}

#[test]
fn memoization_counts_telemetry_free_hits() {
    let scale = tiny();
    let runner = Runner::new(1).with_telemetry(telemetry_on());
    let req = RunRequest::build(VariantKind::BaseCssd, WorkloadKind::Ycsb, &scale);
    runner.run(&req);
    runner.run(&req);
    assert_eq!(runner.runs_executed(), 1);
    assert_eq!(runner.memo_hits(), 1);
    // Memo hits recall the cached result without re-executing, so only the
    // executed run left telemetry behind.
    assert_eq!(runner.telemetry_outputs().len(), 1);
}
