//! Quickstart: simulate one workload on the full SkyByte design and print the
//! headline metrics.
//!
//! ```text
//! cargo run --release -p skybyte-sim --example quickstart
//! ```

use skybyte_sim::{ExperimentScale, Simulation};
use skybyte_types::VariantKind;
use skybyte_workloads::WorkloadKind;

fn main() {
    // A reduced scale so the example finishes in a few seconds; use
    // `ExperimentScale::default_scale()` for larger runs.
    let scale = ExperimentScale::bench();
    let workload = WorkloadKind::Ycsb;

    println!("SkyByte quickstart — workload: {workload}");
    println!(
        "scale: footprint {} MiB, SSD DRAM {} MiB (log {} KiB), host budget {} MiB",
        scale.footprint_bytes >> 20,
        (scale.ssd_data_cache_bytes + scale.write_log_bytes) >> 20,
        scale.write_log_bytes >> 10,
        scale.host_dram_bytes >> 20,
    );
    println!();

    let baseline = Simulation::build(VariantKind::BaseCssd, workload, &scale).run();
    let skybyte = Simulation::build(VariantKind::SkyByteFull, workload, &scale).run();
    let ideal = Simulation::build(VariantKind::DramOnly, workload, &scale).run();

    for r in [&baseline, &skybyte, &ideal] {
        println!(
            "{:<14} exec {:>12}  AMAT {:>9}  flash writes {:>7}  ctx-switches {:>6}  promoted {:>5}",
            r.variant.to_string(),
            r.exec_time.to_string(),
            r.amat.amat().to_string(),
            r.flash_pages_programmed,
            r.context_switches,
            r.pages_promoted,
        );
    }
    println!();
    println!(
        "SkyByte-Full speed-up over Base-CSSD : {:.2}x",
        skybyte.speedup_over(&baseline)
    );
    println!(
        "Fraction of the DRAM-Only ideal      : {:.0}%",
        100.0 * ideal.exec_time.as_nanos() as f64 / skybyte.exec_time.as_nanos() as f64
    );
    println!(
        "Flash write-traffic reduction        : {:.2}x",
        baseline.flash_pages_programmed.max(1) as f64
            / skybyte.flash_pages_programmed.max(1) as f64
    );
}
