//! Device-design ablation: how big should the write log be, and does SkyByte
//! still help with slower (cheaper) flash?
//!
//! Reproduces, for a single write-heavy workload, the two sensitivity studies
//! of §VI-E and §VI-G: the write-log size sweep (Figures 19–20) and the flash
//! technology sweep (Figure 22, Table IV).
//!
//! ```text
//! cargo run --release -p skybyte-sim --example device_design_ablation
//! ```

use skybyte_sim::{ExperimentScale, Simulation};
use skybyte_types::{NandKind, SimConfig, VariantKind, KIB};
use skybyte_workloads::WorkloadKind;

fn main() {
    let scale = ExperimentScale::bench();
    let workload = WorkloadKind::Tpcc;
    println!("Workload: {workload} (36% writes, skewed row updates)\n");

    // --- Write-log size sweep (Figures 19–20) -----------------------------
    println!("Write-log size sweep (total SSD DRAM held constant):");
    let total = scale.ssd_data_cache_bytes + scale.write_log_bytes;
    let mut reference_writes = None;
    let mut reference_time = None;
    for log_kib in [32u64, 64, 128, 256, 512, 1024] {
        let log = log_kib * KIB;
        if log >= total {
            continue;
        }
        let sweep = scale.with_ssd_dram(total - log, log);
        let r = Simulation::build(VariantKind::SkyByteFull, workload, &sweep).run();
        let ref_w = *reference_writes.get_or_insert(r.flash_pages_programmed.max(1));
        let ref_t = *reference_time.get_or_insert(r.exec_time);
        println!(
            "  log {:>5} KiB: exec time {:>6.3}x, flash writes {:>6.3}x, compactions {:>4}",
            log_kib,
            r.exec_time.as_nanos() as f64 / ref_t.as_nanos() as f64,
            r.flash_pages_programmed as f64 / ref_w as f64,
            r.compactions,
        );
    }
    println!("  (the paper finds ~1/8 of the SSD DRAM is already enough — larger logs");
    println!("   give diminishing returns once the coalescing window covers the hot set)\n");

    // --- Flash technology sweep (Figure 22 / Table IV) --------------------
    println!("Flash technology sweep (normalised to SkyByte-WP on the same flash):");
    for nand in NandKind::ALL {
        let wp_cfg = scale.apply(
            SimConfig::default()
                .with_variant(VariantKind::SkyByteWP)
                .with_nand(nand),
        );
        let wp = Simulation::with_config(wp_cfg, workload, &scale).run();
        let full_cfg = scale
            .apply(
                SimConfig::default()
                    .with_variant(VariantKind::SkyByteFull)
                    .with_nand(nand),
            )
            .with_threads(24);
        let full = Simulation::with_config(full_cfg, workload, &scale).run();
        println!(
            "  {:<5} (tR {:>3.0}us): SkyByte-Full runs in {:>5.2}x the time of SkyByte-WP \
             ({} context switches hide the extra latency)",
            nand.to_string(),
            skybyte_types::FlashTimingConfig::for_kind(nand)
                .read_latency
                .as_micros_f64(),
            full.normalized_exec_time(&wp),
            full.context_switches,
        );
    }
    println!("\nWith slower SLC/MLC flash the context-switch benefit grows, which is the");
    println!("paper's argument that SkyByte makes cheap commodity flash usable as memory.");
}
