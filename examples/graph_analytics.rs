//! Graph analytics on a memory-semantic SSD.
//!
//! The paper motivates SkyByte with graph workloads (`bc`, `bfs-dense`) whose
//! working sets exceed affordable DRAM. This example runs both graph
//! benchmarks across the ablation variants and shows how the coordinated
//! context switch lets extra threads hide the flash latency (the §VI-C
//! observation that throughput scales with the thread count when many
//! accesses miss in the SSD DRAM).
//!
//! ```text
//! cargo run --release -p skybyte-sim --example graph_analytics
//! ```

use skybyte_sim::{ExperimentScale, Simulation};
use skybyte_types::{SimConfig, VariantKind};
use skybyte_workloads::WorkloadKind;

fn main() {
    let scale = ExperimentScale::bench();
    let variants = [
        VariantKind::BaseCssd,
        VariantKind::SkyByteC,
        VariantKind::SkyByteWP,
        VariantKind::SkyByteFull,
        VariantKind::DramOnly,
    ];

    for workload in [WorkloadKind::Bc, WorkloadKind::BfsDense] {
        println!("=== {workload} ===");
        let base = Simulation::build(VariantKind::BaseCssd, workload, &scale).run();
        for v in variants {
            let r = Simulation::build(v, workload, &scale).run();
            println!(
                "  {:<14} normalised time {:>6.3}  memory-bound {:>5.1}%  ctx-switches {:>6}",
                v.to_string(),
                r.normalized_exec_time(&base),
                100.0 * r.boundedness.memory_fraction(),
                r.context_switches,
            );
        }

        // Thread scaling of the full design (Figure 15 for this workload).
        println!("  -- SkyByte-Full thread scaling (same total work) --");
        let reference = Simulation::build(VariantKind::SkyByteWP, workload, &scale).run();
        let ref_tp = reference.throughput_accesses_per_sec();
        for threads in [8u32, 16, 24, 32] {
            let cfg: SimConfig = scale
                .apply(SimConfig::default().with_variant(VariantKind::SkyByteFull))
                .with_threads(threads);
            let r = Simulation::with_config(cfg, workload, &scale).run();
            println!(
                "     {threads:>2} threads: throughput {:>6.2}x of SkyByte-WP, SSD bandwidth util {:>5.1}%",
                r.throughput_accesses_per_sec() / ref_tp,
                100.0 * r.ssd_bandwidth_utilisation(),
            );
        }
        println!();
    }
}
