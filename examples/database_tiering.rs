//! Database tiering: in-memory OLTP/KV stores backed by a CXL-SSD.
//!
//! `tpcc` and `ycsb` have strongly skewed row popularity, so they benefit most
//! from SkyByte's adaptive page migration (§III-C): hot pages move into host
//! DRAM while the cold majority stays on cheap flash. This example compares
//! the migration policies of §VI-H — SkyByte's controller-tracked adaptive
//! promotion, TPP-style sampling, and an AstriFlash-style on-demand host page
//! cache — and prints where requests end up being served (the Figure 16
//! breakdown).
//!
//! ```text
//! cargo run --release -p skybyte-sim --example database_tiering
//! ```

use skybyte_sim::{ExperimentScale, Simulation};
use skybyte_types::VariantKind;
use skybyte_workloads::WorkloadKind;

fn main() {
    let scale = ExperimentScale::bench();
    let policies = [
        ("no migration (SkyByte-C)", VariantKind::SkyByteC),
        ("adaptive (SkyByte-CP)", VariantKind::SkyByteCP),
        ("TPP sampling (SkyByte-CT)", VariantKind::SkyByteCT),
        ("AstriFlash-CXL", VariantKind::AstriFlashCxl),
        ("full SkyByte", VariantKind::SkyByteFull),
    ];

    for workload in [WorkloadKind::Tpcc, WorkloadKind::Ycsb] {
        println!("=== {workload} ===");
        let reference = Simulation::build(VariantKind::SkyByteC, workload, &scale).run();
        for (label, variant) in policies {
            let r = Simulation::build(variant, workload, &scale).run();
            println!(
                "  {label:<26} time {:>6.3}x  served by: host {:>4.1}% | SSD-DRAM hit {:>4.1}% | flash {:>4.1}% | write {:>4.1}%  (promoted {:>5}, demoted {:>5})",
                r.normalized_exec_time(&reference),
                100.0 * r.requests.host_fraction(),
                100.0 * r.requests.ssd_read_hit_fraction(),
                100.0 * r.requests.ssd_read_miss_fraction(),
                100.0 * r.requests.ssd_write_fraction(),
                r.pages_promoted,
                r.pages_demoted,
            );
        }
        println!();
    }

    println!("Cost note (paper §VI-B): DDR5 DRAM ≈ $4.28/GB vs ULL flash ≈ $0.27/GB,");
    println!("so serving the cold majority from flash at a fraction of DRAM performance");
    println!("is what makes the CXL-SSD configuration cost-effective.");
}
