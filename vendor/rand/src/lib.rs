//! Vendored stand-in for the `rand` crate.
//!
//! The build environment is offline, so this workspace ships a minimal,
//! API-compatible implementation of the subset of `rand` that the SkyByte
//! crates use: the [`Rng`] extension trait with `gen`, `gen_bool` and
//! `gen_range` over half-open and inclusive integer ranges.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rand_core::{RngCore, SeedableRng};

use std::ops::{Range, RangeInclusive};

/// Distributions sampleable by [`Rng::gen`] (the `Standard` distribution of
/// the real crate).
pub trait StandardSample: Sized {
    /// Draws one value uniformly from the type's standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1), as the real rand crate does.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $next:ident),* $(,)?) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$next() as $t
            }
        }
    )*};
}

impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
                   usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
                   i64 => next_u64, isize => next_u64);

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing random-value methods, automatically implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the type's standard distribution (uniform over the
    /// integer domain, `[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p.clamp(0.0, 1.0)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u64 = rng.gen_range(10..=20);
            assert!((10..=20).contains(&w));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = Counter(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
