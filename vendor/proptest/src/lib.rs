//! Vendored stand-in for the `proptest` crate.
//!
//! The build environment is offline, so this workspace ships a minimal,
//! API-compatible property-testing harness covering the subset of proptest
//! that the SkyByte crates use: the [`proptest!`] macro (with an optional
//! `#![proptest_config(...)]` inner attribute), integer-range and tuple
//! strategies, [`collection::vec`], [`any`], and the `prop_assert*` macros.
//!
//! Unlike upstream proptest there is no shrinking: a failing case panics with
//! the sampled inputs left to the assertion message. Sampling is seeded
//! deterministically so CI runs are reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand_chacha::rand_core::SeedableRng;
use std::ops::{Range, RangeInclusive};

/// The RNG driving strategy sampling.
pub type TestRng = rand_chacha::ChaCha12Rng;

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream proptest's default case count.
        ProptestConfig { cases: 256 }
    }
}

/// Creates the deterministic RNG used for one property function.
pub fn test_rng() -> TestRng {
    TestRng::seed_from_u64(0x5EED_5EED_5EED_5EED)
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy for "any value of `T`", returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Returns a strategy producing arbitrary values of `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(std::marker::PhantomData)
}

impl<T: rand::StandardSample> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::sample_standard(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),* $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

/// Strategies over collections.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from `len` and elements
    /// from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Creates a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rand::Rng::gen_range(rng, self.len.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The common imports of a proptest-based test module.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property; panics with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property-based test functions.
///
/// Each `fn name(pattern in strategy, ...) { body }` becomes a plain function
/// that samples the strategies `cases` times and runs the body. Any item
/// attributes (typically `#[test]`) are passed through.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr);) => {};
    (config = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::test_rng();
            for __case in 0..__config.cases {
                let ($($pat,)+) =
                    $crate::Strategy::sample(&($($strategy,)+), &mut __rng);
                $body
            }
        }
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_and_tuples_stay_in_bounds(
            ops in crate::collection::vec((0u64..8, 0u8..4, any::<bool>()), 1..50)
        ) {
            prop_assert!(!ops.is_empty() && ops.len() < 50);
            for (a, b, _flag) in ops {
                prop_assert!(a < 8);
                prop_assert!(b < 4);
            }
        }
    }

    proptest! {
        #[test]
        fn single_scalar_strategy(x in 3u64..=9) {
            prop_assert!((3..=9).contains(&x));
        }
    }
}
