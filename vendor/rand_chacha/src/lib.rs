//! Vendored stand-in for the `rand_chacha` crate.
//!
//! The build environment is offline, so this workspace ships a minimal,
//! API-compatible [`ChaCha12Rng`]: a genuine 12-round ChaCha keystream
//! generator (D. J. Bernstein's ChaCha with the round count the upstream
//! crate uses for its default RNG), seeded through the re-exported
//! [`rand_core::SeedableRng`] trait.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rand_core;

use rand_core::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;

/// A deterministic RNG driven by the ChaCha stream cipher with 12 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha12Rng {
    key: [u32; 8],
    counter: u64,
    block: [u32; BLOCK_WORDS],
    index: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha12Rng {
    fn refill(&mut self) {
        // "expand 32-byte k", the standard ChaCha constant words.
        let mut state: [u32; BLOCK_WORDS] = [
            0x6170_7865,
            0x3320_646E,
            0x7962_2D32,
            0x6B20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let input = state;
        for _ in 0..6 {
            // Column round followed by diagonal round: 2 of the 12 rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(input.iter()) {
            *word = word.wrapping_add(*init);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha12Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        Self {
            key,
            counter: 0,
            block: [0; BLOCK_WORDS],
            index: BLOCK_WORDS,
        }
    }
}

impl RngCore for ChaCha12Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BLOCK_WORDS {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha12Rng::seed_from_u64(42);
        let mut b = ChaCha12Rng::seed_from_u64(42);
        let mut c = ChaCha12Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha12Rng::seed_from_u64(7);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
