//! Vendored stand-in for the `serde_json` crate.
//!
//! The build environment is offline, so this workspace ships a minimal,
//! API-compatible JSON serializer/parser over the vendored `serde` crate's
//! [`Value`](serde::Value) data model: [`to_string`], [`to_string_pretty`]
//! and [`from_str`]. Output is plain JSON; non-finite floats serialize as
//! `null`, matching upstream `serde_json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize, Value};
use std::fmt::{self, Write as _};

/// Error produced when JSON text cannot be parsed or mapped to the target
/// type.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.serialize(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as human-readable, indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.serialize(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text and deserializes it into `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::deserialize(&value)?)
}

fn render(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Value::UInt(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` is Rust's shortest round-trip float formatting and
                // is always valid JSON for finite values.
                let _ = write!(out, "{f:?}");
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => render_string(s, out),
        Value::Seq(items) => {
            render_container(out, indent, depth, '[', ']', items.len(), |out, i| {
                render(&items[i], out, indent, depth + 1);
            });
        }
        Value::Map(entries) => {
            render_container(out, indent, depth, '{', '}', entries.len(), |out, i| {
                let (k, v) = &entries[i];
                render_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(v, out, indent, depth + 1);
            });
        }
    }
}

fn render_container(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        item(out, i);
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * depth));
        }
    }
    out.push(close);
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                byte as char, self.pos
            )))
        }
    }

    fn consume_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') if self.consume_literal("null") => Ok(Value::Null),
            Some(b't') if self.consume_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.consume_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {other:?} at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]`, got {other:?} at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}`, got {other:?} at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(e.to_string()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
                            let hex = std::str::from_utf8(hex).map_err(|e| Error(e.to_string()))?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|e| Error(e.to_string()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error(format!("invalid codepoint {code}")))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                other => {
                    return Err(Error(format!("unterminated string, got {other:?}")));
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| Error(e.to_string()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error(e.to_string()))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| Error(e.to_string()))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|e| Error(e.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(from_str::<i32>("-7").unwrap(), -7);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b\n".to_string()).unwrap(), "\"a\\\"b\\n\"");
        assert_eq!(from_str::<String>("\"a\\\"b\\n\"").unwrap(), "a\"b\n");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u64, 2.5f64), (3, 4.0)];
        let json = to_string(&v).unwrap();
        let back: Vec<(u64, f64)> = from_str(&json).unwrap();
        assert_eq!(back, v);

        let mut map = std::collections::HashMap::new();
        map.insert(10u64, "ten".to_string());
        let json = to_string(&map).unwrap();
        let back: std::collections::HashMap<u64, String> = from_str(&json).unwrap();
        assert_eq!(back, map);
    }

    #[test]
    fn pretty_output_is_parseable() {
        let v = vec![vec![1u64, 2], vec![3]];
        let json = to_string_pretty(&v).unwrap();
        assert!(json.contains('\n'));
        let back: Vec<Vec<u64>> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn non_finite_floats_become_null_and_back() {
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert!(from_str::<f64>("null").unwrap().is_nan());
    }
}
