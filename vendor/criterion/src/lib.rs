//! Vendored stand-in for the `criterion` crate.
//!
//! The build environment is offline, so this workspace ships a minimal,
//! API-compatible wall-clock benchmarking harness covering the subset of
//! criterion that the SkyByte bench targets use: [`Criterion`],
//! [`BenchmarkGroup`] (with `sample_size`, `warm_up_time` and
//! `measurement_time`), [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. It warms up, picks an
//! iteration count that fills the measurement window, and reports
//! min/mean/max per-iteration times — without upstream's statistics engine,
//! plotting, or baseline comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::marker::PhantomData;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Measurement backends; only wall-clock time is provided.
pub mod measurement {
    /// Wall-clock time measurement (the default of upstream criterion).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct WallTime;
}

/// The benchmark harness entry point.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
    default_warm_up: Duration,
    default_measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 100,
            default_warm_up: Duration::from_secs(3),
            default_measurement: Duration::from_secs(5),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(
        &mut self,
        name: S,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            warm_up: self.default_warm_up,
            measurement: self.default_measurement,
            _criterion: self,
            _measurement: PhantomData,
        }
    }
}

/// A group of benchmarks sharing configuration, created by
/// [`Criterion::benchmark_group`].
#[derive(Debug)]
pub struct BenchmarkGroup<'a, M> {
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    _criterion: &'a mut Criterion,
    _measurement: PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets how long each benchmark warms up before measuring.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up = t;
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement = t;
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`].
    pub fn bench_function<S, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();

        // Warm-up: run single iterations until the warm-up budget is spent,
        // estimating the per-iteration cost as we go.
        let warm_up_start = Instant::now();
        let mut iter_estimate = Duration::from_nanos(1);
        let mut warm_up_iters = 0u64;
        while warm_up_start.elapsed() < self.warm_up {
            let mut bencher = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut bencher);
            iter_estimate = iter_estimate.max(bencher.elapsed);
            warm_up_iters += 1;
            if warm_up_iters >= 10_000 {
                break;
            }
        }

        // Choose an iteration count per sample so that all samples together
        // roughly fill the measurement window.
        let per_sample = self.measurement / self.sample_size as u32;
        let iters = (per_sample.as_nanos() / iter_estimate.as_nanos().max(1)).clamp(1, 1 << 20);

        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        let mut total = Duration::ZERO;
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                iters: iters as u64,
                elapsed: Duration::ZERO,
            };
            f(&mut bencher);
            let per_iter = bencher.elapsed / iters as u32;
            min = min.min(per_iter);
            max = max.max(per_iter);
            total += per_iter;
        }
        let mean = total / self.sample_size as u32;
        println!(
            "{}/{id}: time per iter [min {min:?} mean {mean:?} max {max:?}] \
             ({} samples x {iters} iters)",
            self.name, self.sample_size
        );
        self
    }

    /// Finishes the group (upstream reports summaries here; a no-op).
    pub fn finish(self) {}
}

/// Timing handle passed to the closure of
/// [`BenchmarkGroup::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, running it as many times as the harness requested.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Bundles benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` for a benchmark binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes flags like `--bench`; this harness ignores them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("smoke");
        group.sample_size(5);
        group.warm_up_time(Duration::from_millis(5));
        group.measurement_time(Duration::from_millis(20));
        let mut runs = 0u64;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        assert!(runs > 0);
    }
}
