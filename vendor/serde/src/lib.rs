//! Vendored stand-in for the `serde` crate.
//!
//! The build environment is offline, so this workspace ships a minimal,
//! API-compatible serialization framework covering the subset of serde that
//! the SkyByte crates use: `#[derive(Serialize, Deserialize)]` (including
//! `#[serde(transparent)]`), and JSON round-trips through the companion
//! `serde_json` stand-in.
//!
//! Instead of upstream serde's visitor architecture, this implementation
//! funnels everything through a self-describing [`Value`] tree: serializing
//! builds a `Value`, deserializing reads one back. That is all the formats in
//! this workspace (JSON only) need, and it keeps the derive macro small
//! enough to hand-roll without `syn`/`quote`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::{BuildHasher, Hash};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every type serializes into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer (only produced for negative values).
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (struct fields, string-keyed maps).
    Map(Vec<(String, Value)>),
}

/// Error produced when a [`Value`] cannot be deserialized into the requested
/// type.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can be converted into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn serialize(&self) -> Value;
}

/// A type that can be reconstructed from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`] tree.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Serialize for () {
    fn serialize(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(()),
            other => Err(Error::custom(format!("expected null, got {other:?}"))),
        }
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }

        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let n = match value {
                    Value::UInt(n) => *n,
                    Value::Int(n) if *n >= 0 => *n as u64,
                    other => return Err(Error::custom(format!(
                        "expected unsigned integer, got {other:?}"
                    ))),
                };
                <$t>::try_from(n).map_err(Error::custom)
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let n = *self as i64;
                if n < 0 {
                    Value::Int(n)
                } else {
                    Value::UInt(n as u64)
                }
            }
        }

        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let n: i64 = match value {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i64::try_from(*n).map_err(Error::custom)?,
                    other => return Err(Error::custom(format!(
                        "expected signed integer, got {other:?}"
                    ))),
                };
                <$t>::try_from(n).map_err(Error::custom)
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Float(*self as f64)
            }
        }

        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Float(f) => Ok(*f as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    Value::Int(n) => Ok(*n as $t),
                    // Non-finite floats serialize as null (as in serde_json).
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(Error::custom(format!(
                        "expected number, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

macro_rules! impl_serde_int128 {
    ($($t:ty),* $(,)?) => {$(
        // 128-bit integers exceed the JSON number range of the data model, so
        // they round-trip as decimal strings.
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Str(self.to_string())
            }
        }

        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Str(s) => s.parse::<$t>().map_err(Error::custom),
                    Value::UInt(n) => <$t>::try_from(*n).map_err(Error::custom),
                    Value::Int(n) => <$t>::try_from(*n).map_err(Error::custom),
                    other => Err(Error::custom(format!(
                        "expected 128-bit integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_serde_int128!(u128, i128);

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::custom(format!("expected char, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        T::deserialize(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

fn serialize_seq<'a, T: Serialize + 'a>(items: impl Iterator<Item = &'a T>) -> Value {
    Value::Seq(items.map(Serialize::serialize).collect())
}

fn deserialize_seq<T: Deserialize>(value: &Value) -> Result<Vec<T>, Error> {
    match value {
        Value::Seq(items) => items.iter().map(T::deserialize).collect(),
        other => Err(Error::custom(format!("expected sequence, got {other:?}"))),
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        serialize_seq(self.iter())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        serialize_seq(self.iter())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let items = deserialize_seq::<T>(value)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {len}")))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        serialize_seq(self.iter())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        deserialize_seq(value)
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn serialize(&self) -> Value {
        serialize_seq(self.iter())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        deserialize_seq(value)
            .map(Vec::into_iter)
            .map(VecDeque::from_iter)
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn serialize(&self) -> Value {
        serialize_seq(self.iter())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        deserialize_seq(value)
            .map(Vec::into_iter)
            .map(BTreeSet::from_iter)
    }
}

impl<T: Serialize + Eq + Hash, S: BuildHasher> Serialize for HashSet<T, S> {
    fn serialize(&self) -> Value {
        serialize_seq(self.iter())
    }
}

impl<T: Deserialize + Eq + Hash, S: BuildHasher + Default> Deserialize for HashSet<T, S> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        deserialize_seq(value)
            .map(Vec::into_iter)
            .map(HashSet::from_iter)
    }
}

/// Maps serialize as a sequence of `[key, value]` pairs so that non-string
/// keys survive a JSON round-trip.
fn serialize_map<'a, K: Serialize + 'a, V: Serialize + 'a>(
    entries: impl Iterator<Item = (&'a K, &'a V)>,
) -> Value {
    Value::Seq(
        entries
            .map(|(k, v)| Value::Seq(vec![k.serialize(), v.serialize()]))
            .collect(),
    )
}

fn deserialize_map<K: Deserialize, V: Deserialize>(value: &Value) -> Result<Vec<(K, V)>, Error> {
    match value {
        Value::Seq(items) => items
            .iter()
            .map(|pair| match pair {
                Value::Seq(kv) if kv.len() == 2 => {
                    Ok((K::deserialize(&kv[0])?, V::deserialize(&kv[1])?))
                }
                other => Err(Error::custom(format!(
                    "expected [key, value] pair, got {other:?}"
                ))),
            })
            .collect(),
        other => Err(Error::custom(format!("expected map, got {other:?}"))),
    }
}

impl<K: Serialize + Eq + Hash, V: Serialize, S: BuildHasher> Serialize for HashMap<K, V, S> {
    fn serialize(&self) -> Value {
        serialize_map(self.iter())
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize, S: BuildHasher + Default> Deserialize
    for HashMap<K, V, S>
{
    fn deserialize(value: &Value) -> Result<Self, Error> {
        deserialize_map(value)
            .map(Vec::into_iter)
            .map(HashMap::from_iter)
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        serialize_map(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        deserialize_map(value)
            .map(Vec::into_iter)
            .map(BTreeMap::from_iter)
    }
}

macro_rules! impl_serde_tuple {
    ($(($($t:ident . $idx:tt),+)),* $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$idx.serialize()),+])
            }
        }

        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = stringify!($t); 1 })+;
                match value {
                    Value::Seq(items) if items.len() == LEN => {
                        Ok(($($t::deserialize(&items[$idx])?,)+))
                    }
                    other => Err(Error::custom(format!(
                        "expected {LEN}-tuple, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_serde_tuple!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

impl Serialize for std::time::Duration {
    fn serialize(&self) -> Value {
        Value::Map(vec![
            ("secs".to_string(), Value::UInt(self.as_secs())),
            ("nanos".to_string(), Value::UInt(self.subsec_nanos() as u64)),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let secs: u64 = __private::field(value, "secs")?;
        let nanos: u32 = __private::field(value, "nanos")?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl<T> Serialize for std::marker::PhantomData<T> {
    fn serialize(&self) -> Value {
        Value::Null
    }
}

impl<T> Deserialize for std::marker::PhantomData<T> {
    fn deserialize(_: &Value) -> Result<Self, Error> {
        Ok(std::marker::PhantomData)
    }
}

/// Helpers used by the generated code of `#[derive(Serialize, Deserialize)]`.
/// Not part of the public API contract.
pub mod __private {
    use super::{Deserialize, Error, Value};

    /// Looks up `name` in a [`Value::Map`] and deserializes it.
    pub fn field<T: Deserialize>(value: &Value, name: &str) -> Result<T, Error> {
        match value {
            Value::Map(entries) => match entries.iter().find(|(k, _)| k == name) {
                Some((_, v)) => T::deserialize(v),
                None => Err(Error::custom(format!("missing field `{name}`"))),
            },
            other => Err(Error::custom(format!(
                "expected map with field `{name}`, got {other:?}"
            ))),
        }
    }

    /// Looks up `name` in a [`Value::Map`] and deserializes it, falling back
    /// to `T::default()` when the field is absent — the behaviour of
    /// upstream serde's `#[serde(default)]` field attribute. This is what
    /// lets data pinned under an older schema (e.g. the golden-trace corpus)
    /// keep deserializing after a struct grows a field.
    pub fn field_or_default<T: Deserialize + Default>(
        value: &Value,
        name: &str,
    ) -> Result<T, Error> {
        match value {
            Value::Map(entries) => match entries.iter().find(|(k, _)| k == name) {
                Some((_, v)) => T::deserialize(v),
                None => Ok(T::default()),
            },
            other => Err(Error::custom(format!(
                "expected map with field `{name}`, got {other:?}"
            ))),
        }
    }

    /// Returns the elements of a [`Value::Seq`] of the exact expected length.
    pub fn tuple_elements(value: &Value, len: usize) -> Result<&[Value], Error> {
        match value {
            Value::Seq(items) if items.len() == len => Ok(items),
            other => Err(Error::custom(format!(
                "expected sequence of length {len}, got {other:?}"
            ))),
        }
    }

    /// Builds the error for an unknown enum variant string.
    pub fn unknown_variant(value: &Value, ty: &str) -> Error {
        Error::custom(format!("unknown variant {value:?} for enum {ty}"))
    }
}
