//! Vendored stand-in for the `serde_derive` proc-macro crate.
//!
//! The build environment is offline (no `syn`/`quote`), so this crate parses
//! the derive input with a small hand-rolled walker over raw
//! [`proc_macro::TokenTree`]s and emits impls of the vendored `serde` crate's
//! [`Serialize`]/[`Deserialize`] traits as source text. Supported shapes are
//! exactly what the SkyByte crates use: structs with named fields, tuple
//! structs, unit structs, fieldless enums, generic parameters, and the
//! `#[serde(transparent)]` attribute.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, true)
}

/// Derives the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, false)
}

enum Body {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

/// A named field plus its `#[serde(default)]` marker.
struct Field {
    name: String,
    default: bool,
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

struct Input {
    name: String,
    /// Generic parameter list as declared, without the angle brackets.
    generics_decl: String,
    /// Generic arguments for the use site (`K, W`), without angle brackets.
    generics_use: String,
    /// Names of the type parameters (bounds for these are added).
    type_params: Vec<String>,
    /// Predicates of an explicit `where` clause, without the keyword.
    where_predicates: String,
    transparent: bool,
    body: Body,
}

fn expand(input: TokenStream, ser: bool) -> TokenStream {
    let parsed = match parse(input) {
        Ok(parsed) => parsed,
        Err(msg) => return error(&msg),
    };
    let code = if ser {
        generate_serialize(&parsed)
    } else {
        generate_deserialize(&parsed)
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

fn parse(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut transparent = false;

    // Attributes (doc comments, #[serde(transparent)], ...).
    while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
            if attr_is_serde_transparent(g.stream()) {
                transparent = true;
            }
        }
        i += 2;
    }

    // Visibility.
    if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }

    let is_enum = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => false,
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => true,
        other => {
            return Err(format!(
                "serde_derive: expected struct or enum, got {other:?}"
            ))
        }
    };
    i += 1;

    let name = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde_derive: expected type name, got {other:?}")),
    };
    i += 1;

    let (generics_decl, generics_use, type_params) = if matches!(
        &tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<'
    ) {
        let start = i + 1;
        let mut depth = 1usize;
        let mut j = start;
        while j < tokens.len() && depth > 0 {
            if let TokenTree::Punct(p) = &tokens[j] {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    _ => {}
                }
            }
            j += 1;
        }
        if depth != 0 {
            return Err("serde_derive: unbalanced generics".to_string());
        }
        let inner = &tokens[start..j - 1];
        let decl = tokens_to_string(inner);
        let (use_args, params) = generic_params(inner)?;
        i = j;
        (decl, use_args, params)
    } else {
        (String::new(), String::new(), Vec::new())
    };

    // Optional where clause before the body (named structs / enums).
    let mut where_predicates = String::new();
    if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "where") {
        let start = i + 1;
        let mut j = start;
        while j < tokens.len()
            && !matches!(&tokens[j], TokenTree::Group(g) if g.delimiter() == Delimiter::Brace)
            && !matches!(&tokens[j], TokenTree::Punct(p) if p.as_char() == ';')
        {
            j += 1;
        }
        where_predicates = tokens_to_string(&tokens[start..j]);
        i = j;
    }

    let body = match &tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if is_enum {
                Body::Enum(parse_variants(g.stream())?)
            } else {
                Body::Named(parse_named_fields(g.stream())?)
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            if is_enum {
                return Err("serde_derive: malformed enum body".to_string());
            }
            // A where clause may follow the tuple body; capture it too.
            if matches!(&tokens.get(i + 1), Some(TokenTree::Ident(id)) if id.to_string() == "where")
            {
                let start = i + 2;
                let mut j = start;
                while j < tokens.len()
                    && !matches!(&tokens[j], TokenTree::Punct(p) if p.as_char() == ';')
                {
                    j += 1;
                }
                where_predicates = tokens_to_string(&tokens[start..j]);
            }
            Body::Tuple(count_tuple_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Unit,
        None if !is_enum => Body::Unit,
        other => return Err(format!("serde_derive: unexpected body token {other:?}")),
    };

    Ok(Input {
        name,
        generics_decl,
        generics_use,
        type_params,
        where_predicates,
        transparent,
        body,
    })
}

fn attr_is_serde_transparent(stream: TokenStream) -> bool {
    attr_serde_contains(stream, "transparent")
}

/// Whether an attribute token stream is `serde(...)` containing `word`.
fn attr_serde_contains(stream: TokenStream, word: &str) -> bool {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g))) if id.to_string() == "serde" => g
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == word)),
        _ => false,
    }
}

fn tokens_to_string(tokens: &[TokenTree]) -> String {
    let stream: TokenStream = tokens.iter().cloned().collect();
    stream.to_string()
}

/// Splits a generic parameter list into use-site arguments and the names of
/// the type parameters (lifetimes pass through, bounds and defaults drop).
fn generic_params(tokens: &[TokenTree]) -> Result<(String, Vec<String>), String> {
    let mut use_args: Vec<String> = Vec::new();
    let mut type_params = Vec::new();
    let mut depth = 0usize;
    let mut at_param_start = true;
    let mut k = 0;
    while k < tokens.len() {
        match &tokens[k] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => at_param_start = true,
            TokenTree::Punct(p) if p.as_char() == '\'' && depth == 0 && at_param_start => {
                if let Some(TokenTree::Ident(id)) = tokens.get(k + 1) {
                    use_args.push(format!("'{id}"));
                    at_param_start = false;
                    k += 2;
                    continue;
                }
            }
            TokenTree::Ident(id) if depth == 0 && at_param_start => {
                let name = id.to_string();
                if name == "const" {
                    if let Some(TokenTree::Ident(cn)) = tokens.get(k + 1) {
                        use_args.push(cn.to_string());
                        at_param_start = false;
                        k += 2;
                        continue;
                    }
                    return Err("serde_derive: malformed const parameter".to_string());
                }
                use_args.push(name.clone());
                type_params.push(name);
                at_param_start = false;
            }
            _ => {}
        }
        k += 1;
    }
    Ok((use_args.join(", "), type_params))
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Attributes (`#[serde(default)]` is honoured, the rest skipped).
        let mut default = false;
        while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                if attr_serde_contains(g.stream(), "default") {
                    default = true;
                }
            }
            i += 2;
        }
        if i >= tokens.len() {
            break;
        }
        // Visibility.
        if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let name = match &tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("serde_derive: expected field name, got {other:?}")),
        };
        i += 1;
        if !matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':') {
            return Err(format!("serde_derive: expected `:` after field `{name}`"));
        }
        i += 1;
        // Skip the type up to the next top-level comma.
        let mut angle_depth = 0usize;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '-' => {
                    // `->` in fn-pointer types: skip both halves of the arrow.
                    if matches!(&tokens.get(i + 1), Some(TokenTree::Punct(q)) if q.as_char() == '>')
                    {
                        i += 1;
                    }
                }
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        i += 1; // past the comma (or end)
        fields.push(Field { name, default });
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0usize;
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '-' => {
                if matches!(&tokens.get(i + 1), Some(TokenTree::Punct(q)) if q.as_char() == '>') {
                    i += 1;
                }
            }
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p)
                if p.as_char() == ',' && angle_depth == 0 && i + 1 < tokens.len() =>
            {
                count += 1;
            }
            _ => {}
        }
        i += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => {
                return Err(format!(
                    "serde_derive: expected variant name, got {other:?}"
                ))
            }
        };
        i += 1;
        let fields = match &tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantFields::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantFields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Explicit discriminant: skip to the next top-level comma.
                while i < tokens.len()
                    && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',')
                {
                    i += 1;
                }
                VariantFields::Unit
            }
            _ => VariantFields::Unit,
        };
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

fn impl_header(input: &Input, trait_path: &str) -> String {
    let generics = if input.generics_decl.is_empty() {
        String::new()
    } else {
        format!("<{}>", input.generics_decl)
    };
    let use_args = if input.generics_use.is_empty() {
        String::new()
    } else {
        format!("<{}>", input.generics_use)
    };
    let mut predicates: Vec<String> = Vec::new();
    if !input.where_predicates.is_empty() {
        predicates.push(input.where_predicates.clone());
    }
    for p in &input.type_params {
        predicates.push(format!("{p}: {trait_path}"));
    }
    let where_clause = if predicates.is_empty() {
        String::new()
    } else {
        format!("where {}", predicates.join(", "))
    };
    format!(
        "impl{generics} {trait_path} for {name}{use_args} {where_clause}",
        name = input.name
    )
}

fn generate_serialize(input: &Input) -> String {
    let body = match &input.body {
        Body::Named(fields) if input.transparent && fields.len() == 1 => {
            format!("serde::Serialize::serialize(&self.{})", fields[0].name)
        }
        Body::Named(fields) => {
            let mut pushes = String::new();
            for f in fields {
                let f = &f.name;
                pushes.push_str(&format!(
                    "__fields.push((std::string::String::from({f:?}), \
                     serde::Serialize::serialize(&self.{f})));\n"
                ));
            }
            format!(
                "let mut __fields: std::vec::Vec<(std::string::String, serde::Value)> = \
                 std::vec::Vec::new();\n{pushes}serde::Value::Map(__fields)"
            )
        }
        Body::Tuple(1) => "serde::Serialize::serialize(&self.0)".to_string(),
        Body::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Body::Unit => "serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            // Externally tagged representation, as upstream serde: unit
            // variants are a bare string, data variants a one-entry map.
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let name = &v.name;
                    match &v.fields {
                        VariantFields::Unit => format!(
                            "Self::{name} => serde::Value::Str(std::string::String::from({name:?}))"
                        ),
                        VariantFields::Named(fields) => {
                            let binds = fields
                                .iter()
                                .map(|f| f.name.clone())
                                .collect::<Vec<_>>()
                                .join(", ");
                            let pushes: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    let f = &f.name;
                                    format!(
                                        "(std::string::String::from({f:?}), \
                                     serde::Serialize::serialize({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "Self::{name} {{ {binds} }} => serde::Value::Map(vec![(\
                                 std::string::String::from({name:?}), \
                                 serde::Value::Map(vec![{}]))])",
                                pushes.join(", ")
                            )
                        }
                        VariantFields::Tuple(1) => format!(
                            "Self::{name}(__f0) => serde::Value::Map(vec![(\
                             std::string::String::from({name:?}), \
                             serde::Serialize::serialize(__f0))])"
                        ),
                        VariantFields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("serde::Serialize::serialize(__f{i})"))
                                .collect();
                            format!(
                                "Self::{name}({}) => serde::Value::Map(vec![(\
                                 std::string::String::from({name:?}), \
                                 serde::Value::Seq(vec![{}]))])",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "{header} {{ fn serialize(&self) -> serde::Value {{ {body} }} }}",
        header = impl_header(input, "serde::Serialize")
    )
}

/// The struct-field initialiser of the generated `deserialize`:
/// `#[serde(default)]` fields fall back to `Default::default()` when absent.
fn named_field_init(f: &Field) -> String {
    let helper = if f.default {
        "field_or_default"
    } else {
        "field"
    };
    format!(
        "{name}: serde::__private::{helper}(__value, {name:?})?",
        name = f.name
    )
}

fn generate_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.body {
        Body::Named(fields) if input.transparent && fields.len() == 1 => {
            format!(
                "std::result::Result::Ok(Self {{ {f}: serde::Deserialize::deserialize(__value)? }})",
                f = fields[0].name
            )
        }
        Body::Named(fields) => {
            let inits: Vec<String> = fields.iter().map(named_field_init).collect();
            format!("std::result::Result::Ok(Self {{ {} }})", inits.join(", "))
        }
        Body::Tuple(1) => {
            "std::result::Result::Ok(Self(serde::Deserialize::deserialize(__value)?))".to_string()
        }
        Body::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::deserialize(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = serde::__private::tuple_elements(__value, {n})?;\n\
                 std::result::Result::Ok(Self({}))",
                inits.join(", ")
            )
        }
        Body::Unit => "std::result::Result::Ok(Self)".to_string(),
        Body::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, VariantFields::Unit))
                .map(|v| format!("{v:?} => std::result::Result::Ok(Self::{v}),", v = v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    let constructor = match &v.fields {
                        VariantFields::Unit => return None,
                        VariantFields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    let helper = if f.default {
                                        "field_or_default"
                                    } else {
                                        "field"
                                    };
                                    format!(
                                        "{f}: serde::__private::{helper}(__inner, {f:?})?",
                                        f = f.name
                                    )
                                })
                                .collect();
                            format!("Self::{vname} {{ {} }}", inits.join(", "))
                        }
                        VariantFields::Tuple(1) => {
                            format!("Self::{vname}(serde::Deserialize::deserialize(__inner)?)")
                        }
                        VariantFields::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| format!("serde::Deserialize::deserialize(&__items[{i}])?"))
                                .collect();
                            format!(
                                "{{ let __items = serde::__private::tuple_elements(__inner, {n})?; \
                                 Self::{vname}({}) }}",
                                inits.join(", ")
                            )
                        }
                    };
                    Some(format!(
                        "{vname:?} => std::result::Result::Ok({constructor}),"
                    ))
                })
                .collect();
            format!(
                "match __value {{\n\
                   serde::Value::Str(__s) => match __s.as_str() {{\n\
                     {unit_arms}\n\
                     _ => std::result::Result::Err(serde::__private::unknown_variant(__value, {name:?})),\n\
                   }},\n\
                   serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                     let (__tag, __inner) = &__entries[0];\n\
                     match __tag.as_str() {{\n\
                       {data_arms}\n\
                       _ => std::result::Result::Err(serde::__private::unknown_variant(__value, {name:?})),\n\
                     }}\n\
                   }},\n\
                   _ => std::result::Result::Err(serde::__private::unknown_variant(__value, {name:?})),\n\
                 }}",
                unit_arms = unit_arms.join("\n"),
                data_arms = data_arms.join("\n")
            )
        }
    };
    format!(
        "{header} {{ fn deserialize(__value: &serde::Value) -> std::result::Result<Self, serde::Error> {{ {body} }} }}",
        header = impl_header(input, "serde::Deserialize")
    )
}
