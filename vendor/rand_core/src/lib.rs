//! Vendored stand-in for the `rand_core` crate.
//!
//! The build environment is offline, so this workspace ships a minimal,
//! API-compatible implementation of the subset of `rand_core` that the
//! SkyByte crates use: the [`RngCore`] and [`SeedableRng`] traits, including
//! the SplitMix64-based `seed_from_u64` seed expansion that upstream
//! `rand_core` uses, so seeds behave the same way they would with the real
//! crate family.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of uniformly distributed random bits.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// An RNG that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed type, typically a byte array.
    type Seed: AsMut<[u8]> + Default;

    /// Creates an RNG from the full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates an RNG from a `u64` seed, expanding it with SplitMix64 as the
    /// upstream `rand_core` implementation does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64 (Vigna), the same expansion upstream rand_core uses.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}
