//! Workspace facade for the SkyByte CXL-SSD simulator.
//!
//! This crate re-exports the top of the crate stack so that downstream users
//! (and this workspace's own integration tests and examples) can depend on a
//! single package. The heavy lifting lives in the `skybyte-*` crates under
//! `crates/`; see the README for the full crate map.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use skybyte_sim as sim;
pub use skybyte_ssd as ssd;
pub use skybyte_trace as trace;
pub use skybyte_types as types;
pub use skybyte_workloads as workloads;
